module Protocol = Dsm_core.Protocol
module Engine = Dsm_sim.Engine
module Network = Dsm_sim.Network
module Reliable_channel = Dsm_sim.Reliable_channel
module Latency = Dsm_sim.Latency
module Sim_time = Dsm_sim.Sim_time
module Rng = Dsm_sim.Rng
module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Json = Dsm_stats.Json

type config = {
  universe : int;
  vars : int;
  epochs : int;
  window : int;
  ops_per_epoch : int;
  write_ratio : float;
  churn_prob : float;
  fault_prob : float;
  min_live : int;
  drop : float;
  duplicate : float;
  corrupt : float;
  latency : Latency.t;
  epoch_len : float;
  retransmit_after : float;
  sync_rounds : int;
  flush_poll : float;
  seed : int;
  max_steps : int;
  max_pump_rounds : int;
  strict_delays : bool;
}

let default =
  {
    universe = 6;
    vars = 4;
    epochs = 1_000;
    window = 20;
    ops_per_epoch = 6;
    write_ratio = 0.6;
    churn_prob = 0.25;
    fault_prob = 0.15;
    min_live = 2;
    drop = 0.02;
    duplicate = 0.02;
    corrupt = 0.01;
    latency = Latency.Lognormal { mu = Float.log 10. -. 0.5; sigma = 1.0 };
    epoch_len = 200.;
    retransmit_after = 50.;
    sync_rounds = 2;
    flush_poll = 10.;
    seed = 1;
    max_steps = 50_000_000;
    max_pump_rounds = 64;
    strict_delays = true;
  }

type window_report = {
  w_index : int;
  w_end_epoch : int;
  w_time : float;
  w_writes : int;
  w_applies : int;
  w_delays : int;
  w_unnecessary : int;
  w_violations : int;
  w_lost : int;
  w_ghost_dots : int;
  w_forged_values : int;
  w_cross_window_dups : int;
  w_double_applies : int;
  w_pump_rounds : int;
  w_live : int;
  w_floor_total : int;
  w_reclaimed_slots : int;
  w_live_words : int;
  w_log_entries : int;
  w_dedup_entries : int;
  w_wire_bytes : int;
}

type outcome = {
  protocol_name : string;
  config : config;
  windows : window_report list;
  occupants : int;
  adoptions : int;
  rejoins : int;
  leaves : int;
  crashes : int;
  frees : int;
  max_generation : int;
  total_writes : int;
  total_applies : int;
  total_delays : int;
  unnecessary_delays : int;
  violations : int;
  lost : int;
  ghost_dots : int;
  forged_values : int;
  cross_window_dups : int;
  double_applies : int;
  ops_skipped_inactive : int;
  replayed_writes : int;
  stale_deliveries_dropped : int;
  chan_stale_quarantined : int;
  net_stale_dropped : int;
  net_nonmember_dropped : int;
  corrupt_dropped : int;
  retransmissions : int;
  duplicates_discarded : int;
  aborted_payloads : int;
  payloads_sent : int;
  frames_sent : int;
  wire_bytes_total : int;
  max_live_words : int;
  max_log_entries : int;
  max_dedup_entries : int;
  dedup_reclaimed : int;
  log_reclaimed : int;
  vec_width : int;
  digest : int;
  engine_steps : int;
  end_time : float;
  clean : bool;
}

(* soak wire envelope: protocol traffic plus the anti-entropy plane.
   Unlike {!Churn_campaign} there is no state-transfer message — a new
   occupant of a recycled slot bootstraps from the barrier snapshot
   ({!Protocol.S.adopt}) and pulls the open window's writes through the
   same sync path every rejoiner uses. *)
type 'msg wire =
  | Proto of 'msg
  | Sync_request of { vec : int array }
  | Sync_reply of { vec : int array; writes : 'msg list }

let wire_of_env msg_frame env =
  match env with
  | Proto m -> msg_frame m
  | Sync_request { vec } ->
      {
        Dsm_obs.Wire.kind = "sync";
        scalars = 0;
        dots = 0;
        vectors = [ V.of_array vec ];
      }
  | Sync_reply { vec; writes } ->
      List.fold_left
        (fun acc m ->
          let f = msg_frame m in
          {
            acc with
            Dsm_obs.Wire.scalars =
              acc.Dsm_obs.Wire.scalars + f.Dsm_obs.Wire.scalars;
            dots = acc.Dsm_obs.Wire.dots + f.Dsm_obs.Wire.dots;
            vectors = acc.Dsm_obs.Wire.vectors @ f.Dsm_obs.Wire.vectors;
          })
        {
          Dsm_obs.Wire.kind = "sync";
          scalars = 1;
          dots = 0;
          vectors = [ V.of_array vec ];
        }
        writes

let mix d x = (d * 1000003) lxor x

let run (type pt pm)
    (module P : Protocol.S with type t = pt and type msg = pm) cfg =
  if cfg.universe < 2 then invalid_arg "Soak.run: universe must be >= 2";
  if cfg.min_live < 2 || cfg.min_live > cfg.universe then
    invalid_arg "Soak.run: need 2 <= min_live <= universe";
  if cfg.window < 1 || cfg.epochs < 1 then
    invalid_arg "Soak.run: epochs and window must be positive";
  if cfg.vars < 1 then invalid_arg "Soak.run: vars must be positive";
  let universe = cfg.universe and m = cfg.vars in
  let engine = Engine.create () in
  let rng = Rng.create cfg.seed in
  let churn_rng = Rng.split rng in
  let fault_rng = Rng.split rng in
  let op_rng = Rng.split rng in
  let wire = Dsm_obs.Wire.create ~proto:P.name ~n:universe () in
  let measure = Reliable_channel.wire_frame (wire_of_env P.msg_frame) in
  let faults =
    {
      Network.drop = cfg.drop;
      duplicate = cfg.duplicate;
      corrupt = cfg.corrupt;
    }
  in
  let network =
    Network.create ~engine ~rng ~n:universe
      ~latency:(fun ~src:_ ~dst:_ -> cfg.latency)
      ~faults ~mangle:Reliable_channel.corrupt_frame ~wire ~measure
      ~sizer:(fun f -> Dsm_obs.Wire.frame_bytes (measure f))
      ()
  in
  let channel =
    Reliable_channel.create ~engine ~network
      ~retransmit_after:cfg.retransmit_after ~rng ()
  in
  let membership =
    Membership.create ~history_limit:64 ~universe
      ~initial:(List.init universe Fun.id)
      ()
  in
  Network.set_membership network (Membership.is_member membership);
  let sync_view () =
    Network.set_epoch network (Membership.epoch membership)
  in
  sync_view ();
  let nowf () = Sim_time.to_float (Engine.now engine) in
  (* the previous barrier's common Apply vector: everything at or below
     it has been audited, compacted out of logs, dedup tables and the
     retained execution, and — for retired occupants — reclaimed *)
  let floor = Array.make universe 0 in
  let execution = ref (Execution.create ~n:universe ~m ()) in
  let nodes_proto : pt option array =
    Array.init universe (fun id ->
        Some (P.create (Protocol.config ~n:universe ~m) ~me:id))
  in
  let down = Array.make universe false in
  let leaving = Array.make universe false in
  let durable : (string * string) option array = Array.make universe None in
  let logs : (Dot.t, pm) Hashtbl.t array =
    Array.init universe (fun _ -> Hashtbl.create 256)
  in
  let staged : (Sim_time.t * Execution.kind) list array =
    Array.make universe []
  in
  let write_seq = Array.make universe 0 in
  let proto_of p =
    match nodes_proto.(p) with
    | Some t -> t
    | None ->
        invalid_arg
          (Printf.sprintf "Soak: slot %d has no protocol state" p)
  in
  let live p =
    Membership.is_active membership p && (not down.(p)) && nodes_proto.(p) <> None
  in
  let live_slots () = List.filter (fun p -> not down.(p)) (Membership.active membership) in
  (* counters *)
  let adoptions = ref 0 and rejoins = ref 0 and leaves = ref 0 in
  let crashes = ref 0 and frees = ref 0 in
  let ops_skipped = ref 0 and replayed = ref 0 and stale_dropped = ref 0 in
  let aborted = ref 0 in
  let total_writes = ref 0 in
  let dedup_reclaimed = ref 0 and log_reclaimed = ref 0 in

  let record p kind = staged.(p) <- (Engine.now engine, kind) :: staged.(p) in
  (* commit-before-broadcast, after {!Fault_campaign}: every write is
     durable before its frames leave, so a crash never re-issues a dot
     and a rejoiner's durable vector is never behind what the group saw
     from it.  Committing after {e every} write (not on a timer) also
     keeps the recorded write counter in lock step with the protocol's,
     which the value-forgery monitor depends on. *)
  let commit p =
    List.iter
      (fun (time, kind) -> Execution.record !execution ~proc:p ~time kind)
      (List.rev staged.(p));
    staged.(p) <- [];
    let image = P.snapshot (proto_of p) in
    let log_image = Protocol.Snapshot.encode logs.(p) in
    durable.(p) <- Some (image, log_image)
  in
  let log_outbound p msg =
    List.iter
      (fun (dot, _, _) -> Hashtbl.replace logs.(p) dot msg)
      (P.msg_writes msg)
  in
  let covered p dot =
    let v = P.applied_vector (proto_of p) in
    V.get0 v (Dot.replica dot) >= Dot.seq dot
  in
  let ch_send ~src ~dst msg =
    if Membership.is_active membership dst then
      Reliable_channel.send channel ~src ~dst msg
  in
  let ch_broadcast ~src msg =
    List.iter
      (fun dst -> if dst <> src then ch_send ~src ~dst msg)
      (Membership.active membership)
  in
  let rec process p (eff : pm Protocol.effects) =
    List.iter (fun dot -> record p (Execution.Skip { dot })) eff.skipped;
    List.iter
      (fun (a : Protocol.apply_record) ->
        record p
          (Execution.Apply
             {
               dot = a.adot;
               var = a.avar;
               value = a.avalue;
               delayed = a.afrom_buffer;
             }))
      eff.applied;
    List.iter
      (fun outbound ->
        let msg =
          match outbound with
          | Protocol.Broadcast msg -> msg
          | Protocol.Unicast { msg; _ } -> msg
        in
        log_outbound p msg;
        List.iter
          (fun (dot, var, value) -> record p (Execution.Send { dot; var; value }))
          (P.msg_writes msg);
        match outbound with
        | Protocol.Broadcast msg -> ch_broadcast ~src:p (Proto msg)
        | Protocol.Unicast { dst; msg } -> ch_send ~src:p ~dst (Proto msg))
      eff.to_send
  and deliver_proto p ~src msg =
    log_outbound p msg;
    let writes = P.msg_writes msg in
    if writes <> [] && List.for_all (fun (dot, _, _) -> covered p dot) writes
    then incr stale_dropped
    else begin
      List.iter
        (fun (dot, _, _) -> record p (Execution.Receipt { dot; src }))
        writes;
      let eff = P.receive (proto_of p) ~src msg in
      (match writes with
      | [] -> ()
      | _ when eff.Protocol.applied = [] && eff.Protocol.skipped = [] -> (
          match P.waiting_for (proto_of p) ~src msg with
          | Some waiting_for ->
              List.iter
                (fun (dot, _, _) ->
                  record p (Execution.Blocked { dot; waiting_for }))
                writes
          | None -> ())
      | _ -> ());
      process p eff
    end
  in
  let send_sync_request p =
    let vec = V.to_array (P.applied_vector (proto_of p)) in
    List.iter
      (fun dst ->
        if dst <> p then
          Reliable_channel.send channel ~src:p ~dst (Sync_request { vec }))
      (Membership.active membership)
  in
  (* the writes this node holds beyond [vec]; components at or below
     the audit floor never enter the gap — they were compacted out of
     every log at the barrier, and every durable vector (commit after
     each write, forced rejoin before each barrier) is at or above the
     floor, so no requester can ask for them *)
  let collect_since p ~vec =
    let mine = V.to_array (P.applied_vector (proto_of p)) in
    let out = ref [] in
    for u = Array.length mine - 1 downto 0 do
      let have = max (if u < Array.length vec then vec.(u) else 0) floor.(u) in
      for s = mine.(u) downto have + 1 do
        (* the log is keyed by full dots: under slot reuse the same
           (slot, seq) coordinate pair always denotes one write, but
           its dot carries the issuing occupant's generation — resolve
           it through the retirement ledger before the lookup *)
        let gen =
          match Membership.dot_gen membership ~slot:u ~seq:s with
          | Some g -> g
          | None -> 0
        in
        let dot = Dot.make_gen ~replica:u ~gen ~seq:s in
        match Hashtbl.find_opt logs.(p) dot with
        | Some msg -> out := msg :: !out
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Soak: %s applied %s but p%d's durable log cannot \
                  re-supply it (mine=[%s] vec=[%s] floor=[%s])"
                 P.name (Dot.to_string dot) (p + 1)
                 (String.concat ";" (Array.to_list (Array.map string_of_int mine)))
                 (String.concat ";" (Array.to_list (Array.map string_of_int vec)))
                 (String.concat ";"
                    (Array.to_list (Array.map string_of_int floor))))
      done
    done;
    (mine, !out)
  in
  let serve_sync p ~peer ~vec =
    let mine, out = collect_since p ~vec in
    ch_send ~src:p ~dst:peer (Sync_reply { vec = mine; writes = out })
  in
  let issuer_of msg =
    match P.msg_writes msg with
    | (dot, _, _) :: _ -> Dot.replica dot
    | [] -> invalid_arg "Soak: control message in the anti-entropy log"
  in
  let absorb_sync p writes =
    List.iter
      (fun msg ->
        let fresh =
          List.exists (fun (dot, _, _) -> not (covered p dot)) (P.msg_writes msg)
        in
        if fresh then begin
          incr replayed;
          deliver_proto p ~src:(issuer_of msg) msg
        end)
      writes
  in
  for dst = 0 to universe - 1 do
    Reliable_channel.set_handler channel dst (fun ~src ~at:_ w ->
        if (not down.(dst)) && nodes_proto.(dst) <> None then
          match w with
          | Proto msg -> deliver_proto dst ~src msg
          | Sync_request { vec } -> serve_sync dst ~peer:src ~vec
          | Sync_reply { vec = _; writes } -> absorb_sync dst writes)
  done;
  let schedule_catch_up p =
    send_sync_request p;
    for k = 1 to cfg.sync_rounds - 1 do
      Engine.schedule_after engine (float_of_int k *. cfg.retransmit_after)
        (fun () -> if live p then send_sync_request p)
    done
  in

  (* barrier snapshot: one live replica's image at the moment every
     live Apply vector was equal.  A new occupant of a recycled slot
     adopts from it — its inherited state is exactly the audited floor,
     so every apply it performs afterwards lands in the open window's
     execution through the normal receive path. *)
  let barrier_image = ref (P.snapshot (proto_of 0)) in

  (* ---- churn actions --------------------------------------------- *)
  let do_crash p =
    Membership.crash membership ~at:(Engine.now engine) p;
    sync_view ();
    down.(p) <- true;
    incr crashes;
    staged.(p) <- [];
    Network.mark_crashed network p;
    aborted := !aborted + Reliable_channel.abort_peer channel ~peer:p
  in
  let do_rejoin p =
    Membership.join membership ~at:(Engine.now engine) p;
    sync_view ();
    Network.bump_incarnation network p;
    Reliable_channel.bump_incarnation channel p;
    Network.mark_recovered network p;
    down.(p) <- false;
    (match durable.(p) with
    | Some (image, log_image) ->
        let t = P.restore (Protocol.config ~n:universe ~m) ~me:p image in
        nodes_proto.(p) <- Some t;
        logs.(p) <- Protocol.Snapshot.decode log_image
    | None ->
        (* crashed before its first commit in this occupancy *)
        nodes_proto.(p) <-
          Some (P.create (Protocol.config ~n:universe ~m) ~me:p));
    incr rejoins;
    schedule_catch_up p;
    (* survivors must also ask around: the rejoiner's pre-crash
       broadcasts may have died quarantined on the wire and only its
       durable log can re-supply them *)
    Engine.schedule_after engine cfg.retransmit_after (fun () ->
        List.iter (fun q -> if q <> p then send_sync_request q) (live_slots ()))
  in
  let do_leave p =
    leaving.(p) <- true;
    let depart () =
      commit p;
      let final = V.get0 (P.applied_vector (proto_of p)) p in
      Membership.leave membership ~at:(Engine.now engine) ~final p;
      sync_view ();
      aborted := !aborted + Reliable_channel.abort_peer channel ~peer:p;
      (* retire the occupant's runtime state immediately: the slot's
         protocol image, durable checkpoint and log die with it — the
         group's logs carry its writes, and the ledger its final *)
      nodes_proto.(p) <- None;
      durable.(p) <- None;
      logs.(p) <- Hashtbl.create 16;
      leaving.(p) <- false;
      incr leaves
    in
    let rec poll tries =
      if tries > 100_000 then
        failwith (Printf.sprintf "Soak: p%d leave flush did not drain" (p + 1))
      else if down.(p) then leaving.(p) <- false
      else if Reliable_channel.unacked_from channel ~peer:p = 0 then depart ()
      else
        Engine.schedule_after engine cfg.flush_poll (fun () -> poll (tries + 1))
    in
    poll 0
  in
  let do_adopt p =
    let gen = Membership.generation membership p in
    Membership.join membership ~at:(Engine.now engine) p;
    sync_view ();
    let t =
      P.adopt (Protocol.config ~n:universe ~m) ~me:p ~gen
        ~sponsor:!barrier_image
    in
    nodes_proto.(p) <- Some t;
    down.(p) <- false;
    leaving.(p) <- false;
    logs.(p) <- Hashtbl.create 64;
    write_seq.(p) <- V.get0 (P.applied_vector t) p;
    incr adoptions;
    commit p;
    schedule_catch_up p
  in
  let churn_action () =
    let active = Membership.active membership in
    let up = List.filter (fun p -> not down.(p)) active in
    let stable = List.filter (fun p -> not leaving.(p)) up in
    let downs =
      List.filter
        (fun p -> down.(p) && Membership.is_member membership p)
        (List.init universe Fun.id)
    in
    let free_reuse =
      List.filter
        (fun p ->
          match Membership.state membership p with
          | Membership.Free { gen } -> gen > 0
          | _ -> false)
        (List.init universe Fun.id)
    in
    let can_shrink = List.length stable > cfg.min_live in
    let choices = ref [] in
    if can_shrink then choices := `Leave :: `Crash :: !choices;
    if downs <> [] then choices := `Rejoin :: !choices;
    if free_reuse <> [] then choices := `Adopt :: !choices;
    match !choices with
    | [] -> ()
    | cs -> (
        let pick l = List.nth l (Rng.int churn_rng (List.length l)) in
        match pick cs with
        | `Leave -> do_leave (pick stable)
        | `Crash -> do_crash (pick stable)
        | `Rejoin -> do_rejoin (pick downs)
        | `Adopt -> do_adopt (pick free_reuse))
  in
  let fault_action () =
    let up = List.filter (fun p -> not down.(p)) (Membership.active membership) in
    match up with
    | a :: b :: _ when List.length up >= 2 ->
        let arr = Array.of_list up in
        let src = Rng.choice fault_rng arr in
        let dst = Rng.choice fault_rng arr in
        let src, dst = if src = dst then (a, b) else (src, dst) in
        let dur =
          Rng.uniform fault_rng (0.5 *. cfg.epoch_len) (2. *. cfg.epoch_len)
        in
        if Rng.bool fault_rng then begin
          Network.cut_oneway network ~src ~dst;
          Engine.schedule_after engine dur (fun () ->
              Network.heal_oneway network ~src ~dst)
        end
        else begin
          Network.cut network ~a:src ~b:dst;
          Engine.schedule_after engine dur (fun () ->
              Network.heal network ~a:src ~b:dst)
        end
    | _ -> ()
  in

  (* ---- workload ---------------------------------------------------- *)
  let schedule_epoch_ops ~t0 =
    for _ = 1 to cfg.ops_per_epoch do
      let p = Rng.int op_rng universe in
      let at = t0 +. Rng.uniform op_rng 0. cfg.epoch_len in
      let is_write = Rng.bernoulli op_rng cfg.write_ratio in
      let var = Rng.int op_rng m in
      Engine.schedule_at engine (Sim_time.of_float at) (fun () ->
          if (not (live p)) || leaving.(p) then incr ops_skipped
          else if is_write then begin
            write_seq.(p) <- write_seq.(p) + 1;
            incr total_writes;
            let value = Sim_run.write_value ~proc:p ~seq:write_seq.(p) in
            let _, eff = P.write (proto_of p) ~var ~value in
            process p eff;
            commit p
          end
          else begin
            let value, read_from = P.read (proto_of p) ~var in
            record p (Execution.Return { var; value; read_from })
          end)
    done
  in

  let drain phase =
    match Engine.run ~max_steps:cfg.max_steps engine with
    | Engine.Drained -> ()
    | Engine.Hit_step_limit ->
        failwith
          (Printf.sprintf "Soak: %s did not quiesce within %d events" phase
             cfg.max_steps)
    | Engine.Hit_time_limit -> assert false
  in

  (* ---- the convergence barrier ------------------------------------ *)
  let windows = ref [] in
  let window_index = ref 0 in
  let digest = ref cfg.seed in
  let ghost_dots = ref 0 and forged_values = ref 0 in
  let cross_window_dups = ref 0 and double_applies = ref 0 in
  let total_applies = ref 0 and total_delays = ref 0 in
  let unnecessary_delays = ref 0 and violations = ref 0 and lost = ref 0 in
  let max_live_words = ref 0 and max_log_entries = ref 0 in
  let max_dedup_entries = ref 0 and max_generation = ref 0 in

  (* window monitors, run on the closing window's execution before it
     is discarded. The value-forgery check exploits that the workload
     derives every written value from the dot that will carry it: a
     stale generation slipping past the quarantine cannot forge the
     right value for the slot's current occupant. *)
  let scan_window exec =
    let applied = Hashtbl.create 1024 in
    let g = ref 0 and f = ref 0 and x = ref 0 and d = ref 0 in
    let w = ref 0 and a = ref 0 in
    List.iter
      (fun (ev : Execution.event) ->
        match ev.Execution.kind with
        | Execution.Send { dot; var = _; value } ->
            incr w;
            if
              value
              <> Sim_run.write_value ~proc:(Dot.replica dot) ~seq:(Dot.seq dot)
            then incr f
        | Execution.Apply { dot; var = _; value; _ } ->
            incr a;
            let slot = Dot.replica dot and seq = Dot.seq dot in
            if value <> Sim_run.write_value ~proc:slot ~seq then incr f;
            if seq <= floor.(slot) then incr x;
            if Hashtbl.mem applied (ev.Execution.proc, dot) then incr d
            else Hashtbl.add applied (ev.Execution.proc, dot) ();
            (match Membership.dot_gen membership ~slot ~seq with
            | Some gen when gen <> Dot.gen dot -> incr g
            | _ -> ())
        | Execution.Receipt _ | Execution.Blocked _ | Execution.Skip _
        | Execution.Return _ ->
            ())
      (Execution.events exec);
    (!w, !a, !g, !f, !x, !d)
  in
  (* ghost-dot scan over live stores: after reclamation no replica may
     hold a value attributed to a dot beyond the cluster floor, from a
     generation the ledger does not attribute, or with a value the
     dot's occupant never wrote *)
  let scan_stores common =
    let g = ref 0 and f = ref 0 in
    List.iter
      (fun p ->
        for var = 0 to m - 1 do
          match P.read (proto_of p) ~var with
          | _, None -> ()
          | value, Some dot ->
              let slot = Dot.replica dot and seq = Dot.seq dot in
              if seq > common.(slot) then incr g;
              (match Membership.dot_gen membership ~slot ~seq with
              | Some gen when gen <> Dot.gen dot -> incr g
              | _ -> ());
              (match value with
              | Dsm_memory.Operation.Val v ->
                  if v <> Sim_run.write_value ~proc:slot ~seq then incr f
              | Dsm_memory.Operation.Bot -> incr g)
        done)
      (live_slots ());
    (!g, !f)
  in
  let barrier ~end_epoch =
    incr window_index;
    (* 1. globally quiescent: heal every link, revive every corpse *)
    Network.heal_all network;
    List.iter
      (fun p ->
        if down.(p) && Membership.is_member membership p then do_rejoin p)
      (List.init universe Fun.id);
    drain "barrier drain";
    (* 2. anti-entropy pump to a common Apply vector.  Stores may
       legitimately differ (concurrent writes land in per-replica
       apply order); vector equality is the fixpoint that matters —
       every live replica has applied exactly the same write set. *)
    let vectors_equal () =
      match live_slots () with
      | [] | [ _ ] -> true
      | first :: rest ->
          let v0 = V.to_array (P.applied_vector (proto_of first)) in
          List.for_all
            (fun p -> V.to_array (P.applied_vector (proto_of p)) = v0)
            rest
    in
    let rec pump round =
      if vectors_equal () then round
      else if round >= cfg.max_pump_rounds then
        failwith
          (Printf.sprintf
             "Soak: barrier %d did not converge within %d sync rounds"
             !window_index cfg.max_pump_rounds)
      else begin
        List.iter send_sync_request (live_slots ());
        drain "barrier pump";
        pump (round + 1)
      end
    in
    let pump_rounds = pump 0 in
    let lv = live_slots () in
    List.iter commit lv;
    let common =
      match lv with
      | [] -> Array.copy floor
      | p :: _ -> V.to_array (P.applied_vector (proto_of p))
    in
    (* 3. audit the closing window against the floor *)
    let w_writes, w_applies, wg, wf, wx, wd = scan_window !execution in
    let sg, sf = scan_stores common in
    let report =
      Checker.check
        ~expected:(fun ~proc ~dot:_ -> Membership.is_active membership proc)
        ~floor:(V.of_array floor) !execution
    in
    let w_violations = List.length report.Checker.violations in
    let w_lost = List.length report.Checker.lost in
    ghost_dots := !ghost_dots + wg + sg;
    forged_values := !forged_values + wf + sf;
    cross_window_dups := !cross_window_dups + wx;
    double_applies := !double_applies + wd;
    total_applies := !total_applies + report.Checker.total_applies;
    total_delays := !total_delays + report.Checker.total_delays;
    unnecessary_delays :=
      !unnecessary_delays + report.Checker.unnecessary_delays;
    violations := !violations + w_violations;
    lost := !lost + w_lost;
    (* 4. reclamation: every retired occupant whose final write the
       whole cluster has applied loses its slot to the next generation;
       logs, dedup tables and the retained execution compact to the new
       floor *)
    let reclaimed = ref 0 in
    for p = 0 to universe - 1 do
      match Membership.state membership p with
      | Membership.Left { final; _ } when common.(p) >= final ->
          Membership.free membership ~at:(Engine.now engine) p;
          Network.bump_generation network p;
          Reliable_channel.bump_generation channel p;
          incr reclaimed;
          incr frees
      | _ -> ()
    done;
    sync_view ();
    for p = 0 to universe - 1 do
      max_generation := max !max_generation (Membership.generation membership p)
    done;
    let log_entries = ref 0 and log_peak = ref 0 in
    Array.iteri
      (fun p log ->
        if nodes_proto.(p) <> None then begin
          log_peak := !log_peak + Hashtbl.length log;
          let dead =
            Hashtbl.fold
              (fun dot _ acc ->
                if Dot.seq dot <= common.(Dot.replica dot) then dot :: acc
                else acc)
              log []
          in
          List.iter (Hashtbl.remove log) dead;
          log_reclaimed := !log_reclaimed + List.length dead;
          log_entries := !log_entries + Hashtbl.length log
        end)
      logs;
    dedup_reclaimed := !dedup_reclaimed + Reliable_channel.gc_dedup channel;
    let dedup_now = Reliable_channel.dedup_entries channel in
    (* 5. measure, refloor, reopen *)
    Gc.compact ();
    let live_words = (Gc.stat ()).Gc.live_words in
    max_live_words := max !max_live_words live_words;
    max_log_entries := max !max_log_entries !log_peak;
    max_dedup_entries := max !max_dedup_entries dedup_now;
    Array.blit common 0 floor 0 universe;
    barrier_image :=
      (match lv with p :: _ -> P.snapshot (proto_of p) | [] -> !barrier_image);
    execution := Execution.create ~n:universe ~m ();
    Array.iter (fun d -> digest := mix !digest d) common;
    digest := mix !digest (Membership.epoch membership);
    digest := mix !digest w_writes;
    digest := mix !digest w_applies;
    digest := mix !digest pump_rounds;
    let wr =
      {
        w_index = !window_index;
        w_end_epoch = end_epoch;
        w_time = nowf ();
        w_writes;
        w_applies;
        w_delays = report.Checker.total_delays;
        w_unnecessary = report.Checker.unnecessary_delays;
        w_violations;
        w_lost;
        w_ghost_dots = wg + sg;
        w_forged_values = wf + sf;
        w_cross_window_dups = wx;
        w_double_applies = wd;
        w_pump_rounds = pump_rounds;
        w_live = List.length lv;
        w_floor_total = Array.fold_left ( + ) 0 floor;
        w_reclaimed_slots = !reclaimed;
        w_live_words = live_words;
        w_log_entries = !log_entries;
        w_dedup_entries = dedup_now;
        w_wire_bytes = Dsm_obs.Wire.total_bytes wire;
      }
    in
    windows := wr :: !windows
  in

  (* ---- epoch loop -------------------------------------------------- *)
  for epoch = 1 to cfg.epochs do
    let t0 = nowf () in
    let t_end = t0 +. cfg.epoch_len in
    if Rng.bernoulli churn_rng cfg.churn_prob then churn_action ();
    if Rng.bernoulli fault_rng cfg.fault_prob then fault_action ();
    schedule_epoch_ops ~t0;
    (* an event at the horizon so the clock always lands on it, open
       link cuts notwithstanding (a full drain here could rearm
       retransmission timers forever) *)
    Engine.schedule_at engine (Sim_time.of_float t_end) (fun () -> ());
    (match
       Engine.run ~max_steps:cfg.max_steps
         ~until:(Sim_time.of_float t_end) engine
     with
    | Engine.Drained | Engine.Hit_time_limit -> ()
    | Engine.Hit_step_limit ->
        failwith
          (Printf.sprintf "Soak: epoch %d exceeded %d events" epoch
             cfg.max_steps));
    if epoch mod cfg.window = 0 || epoch = cfg.epochs then
      barrier ~end_epoch:epoch
  done;

  let summary = Membership.history_summary membership in
  let occupants = universe + summary.Membership.joins + !adoptions in
  let clean =
    !violations = 0 && !lost = 0 && !ghost_dots = 0 && !forged_values = 0
    && !cross_window_dups = 0 && !double_applies = 0
    && ((not cfg.strict_delays) || !unnecessary_delays = 0)
  in
  {
    protocol_name = P.name;
    config = cfg;
    windows = List.rev !windows;
    occupants;
    adoptions = !adoptions;
    rejoins = !rejoins;
    leaves = !leaves;
    crashes = !crashes;
    frees = !frees;
    max_generation = !max_generation;
    total_writes = !total_writes;
    total_applies = !total_applies;
    total_delays = !total_delays;
    unnecessary_delays = !unnecessary_delays;
    violations = !violations;
    lost = !lost;
    ghost_dots = !ghost_dots;
    forged_values = !forged_values;
    cross_window_dups = !cross_window_dups;
    double_applies = !double_applies;
    ops_skipped_inactive = !ops_skipped;
    replayed_writes = !replayed;
    stale_deliveries_dropped = !stale_dropped;
    chan_stale_quarantined = Reliable_channel.stale_quarantined channel;
    net_stale_dropped = Network.messages_stale_dropped network;
    net_nonmember_dropped = Network.messages_nonmember_dropped network;
    corrupt_dropped = Reliable_channel.corrupt_dropped channel;
    retransmissions = Reliable_channel.retransmissions channel;
    duplicates_discarded = Reliable_channel.duplicates_discarded channel;
    aborted_payloads = !aborted;
    payloads_sent = Reliable_channel.payloads_sent channel;
    frames_sent = Network.messages_sent network;
    wire_bytes_total = Dsm_obs.Wire.total_bytes wire;
    max_live_words = !max_live_words;
    max_log_entries = !max_log_entries;
    max_dedup_entries = !max_dedup_entries;
    dedup_reclaimed = !dedup_reclaimed;
    log_reclaimed = !log_reclaimed;
    vec_width = universe;
    digest = !digest;
    engine_steps = Engine.steps_executed engine;
    end_time = nowf ();
    clean;
  }

(* ---- reporting ----------------------------------------------------- *)

let high_water_table o =
  (* the endurance claim in one table: state that would grow without
     bound under naive slot management, against the bound reclamation
     holds it to *)
  let early, late =
    match (o.windows, List.rev o.windows) with
    | w0 :: _, wn :: _ -> (Some w0, Some wn)
    | _ -> (None, None)
  in
  let row name value = (name, value) in
  let of_w f = function Some w -> f w | None -> 0 in
  [
    row "occupant lifetimes" o.occupants;
    row "slot reuses (adoptions)" o.adoptions;
    row "max generation reached" o.max_generation;
    row "wire vector width" o.vec_width;
    row "live words (first window)" (of_w (fun w -> w.w_live_words) early);
    row "live words (last window)" (of_w (fun w -> w.w_live_words) late);
    row "live words high-water" o.max_live_words;
    row "log entries high-water" o.max_log_entries;
    row "dedup entries high-water" o.max_dedup_entries;
    row "log entries reclaimed" o.log_reclaimed;
    row "dedup entries reclaimed" o.dedup_reclaimed;
  ]

let to_json o =
  let num n = Json.Num (float_of_int n) in
  let window w =
    Json.Obj
      [
        ("window", num w.w_index);
        ("end_epoch", num w.w_end_epoch);
        ("time", Json.Num w.w_time);
        ("writes", num w.w_writes);
        ("applies", num w.w_applies);
        ("delays", num w.w_delays);
        ("unnecessary_delays", num w.w_unnecessary);
        ("violations", num w.w_violations);
        ("lost", num w.w_lost);
        ("ghost_dots", num w.w_ghost_dots);
        ("forged_values", num w.w_forged_values);
        ("cross_window_dups", num w.w_cross_window_dups);
        ("double_applies", num w.w_double_applies);
        ("pump_rounds", num w.w_pump_rounds);
        ("live", num w.w_live);
        ("floor_total", num w.w_floor_total);
        ("reclaimed_slots", num w.w_reclaimed_slots);
        ("live_words", num w.w_live_words);
        ("log_entries", num w.w_log_entries);
        ("dedup_entries", num w.w_dedup_entries);
        ("wire_bytes", num w.w_wire_bytes);
      ]
  in
  (* windows are summarized by quartile samples plus extrema — 500
     windows of a 10k-epoch run would swamp the artifact otherwise *)
  let ws = Array.of_list o.windows in
  let sampled =
    let n = Array.length ws in
    if n <= 12 then Array.to_list ws
    else
      List.filter_map
        (fun i -> if i >= 0 && i < n then Some ws.(i) else None)
        [ 0; n / 4; n / 2; 3 * n / 4; n - 2; n - 1 ]
  in
  Json.Obj
    [
      ("schema", Json.Str "causal-dsm-bench/v1");
      ("section", Json.Str "soak");
      ("protocol", Json.Str o.protocol_name);
      ( "config",
        Json.Obj
          [
            ("universe", num o.config.universe);
            ("vars", num o.config.vars);
            ("epochs", num o.config.epochs);
            ("window", num o.config.window);
            ("ops_per_epoch", num o.config.ops_per_epoch);
            ("seed", num o.config.seed);
            ("churn_prob", Json.Num o.config.churn_prob);
            ("fault_prob", Json.Num o.config.fault_prob);
            ("drop", Json.Num o.config.drop);
            ("duplicate", Json.Num o.config.duplicate);
            ("corrupt", Json.Num o.config.corrupt);
          ] );
      ("occupants", num o.occupants);
      ("adoptions", num o.adoptions);
      ("rejoins", num o.rejoins);
      ("leaves", num o.leaves);
      ("crashes", num o.crashes);
      ("frees", num o.frees);
      ("max_generation", num o.max_generation);
      ("total_writes", num o.total_writes);
      ("total_applies", num o.total_applies);
      ("total_delays", num o.total_delays);
      ("unnecessary_delays", num o.unnecessary_delays);
      ("violations", num o.violations);
      ("lost", num o.lost);
      ("ghost_dots", num o.ghost_dots);
      ("forged_values", num o.forged_values);
      ("cross_window_dups", num o.cross_window_dups);
      ("double_applies", num o.double_applies);
      ("replayed_writes", num o.replayed_writes);
      ("stale_quarantined", num o.chan_stale_quarantined);
      ("net_stale_dropped", num o.net_stale_dropped);
      ("retransmissions", num o.retransmissions);
      ("wire_total_bytes", num o.wire_bytes_total);
      ("vec_width", num o.vec_width);
      ("max_live_words", num o.max_live_words);
      ("max_log_entries", num o.max_log_entries);
      ("max_dedup_entries", num o.max_dedup_entries);
      ("dedup_reclaimed", num o.dedup_reclaimed);
      ("log_reclaimed", num o.log_reclaimed);
      (* as a string: the 63-bit fingerprint does not survive the
         round-trip through a JSON double *)
      ("digest", Json.Str (string_of_int o.digest));
      ("engine_steps", num o.engine_steps);
      ("end_time", Json.Num o.end_time);
      ("clean", Json.Bool o.clean);
      ("windows", Json.Arr (List.map window sampled));
    ]

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%s soak: %d epochs / %d windows, %d occupant lifetimes over %d \
     slots (%d adoptions, %d rejoins, %d leaves, %d crashes, %d frees, max \
     gen %d)@,\
     writes=%d applies=%d delays=%d (unnecessary=%d) violations=%d lost=%d@,\
     ghosts=%d forged=%d cross-window dups=%d double applies=%d@,\
     quarantined=%d stale-dropped=%d nonmember-dropped=%d replayed=%d@,\
     reclaimed: %d log entries, %d dedup entries; high-water: %d log / %d \
     dedup / %d live words; vec width=%d@,\
     digest=%d steps=%d t_end=%.0f clean=%b@]" o.protocol_name
    o.config.epochs (List.length o.windows) o.occupants o.config.universe
    o.adoptions o.rejoins o.leaves o.crashes o.frees o.max_generation
    o.total_writes o.total_applies o.total_delays o.unnecessary_delays
    o.violations o.lost o.ghost_dots o.forged_values o.cross_window_dups
    o.double_applies o.chan_stale_quarantined o.net_stale_dropped
    o.net_nonmember_dropped o.replayed_writes o.log_reclaimed
    o.dedup_reclaimed o.max_log_entries o.max_dedup_entries o.max_live_words
    o.vec_width o.digest o.engine_steps o.end_time o.clean
