(** Unbounded-lifetime churn soak: the endurance driver for the
    generation-stamped dot space.

    Where {!Churn_campaign} runs one scripted fault plan to completion
    and audits the whole execution at the end, this driver runs
    {e epochs} of randomized workload, churn and link faults for as
    long as asked — thousands of occupant lifetimes over a {e fixed}
    slot universe — and keeps every piece of state bounded by the live
    membership, not by the run's length:

    - {b slot reuse}: a gracefully departed occupant's slot is
      recycled to a new logical process under a bumped {e generation}
      ({!Membership.free} + {!Dsm_core.Protocol.S.adopt}); the write
      counter continues monotonically across occupants, so dots stay
      globally unique while the generation stamp keeps the occupants
      distinguishable;
    - {b convergence barriers}: every [window] epochs the driver heals
      all links, force-rejoins every crashed slot and pumps
      anti-entropy until all live Apply vectors are equal. The common
      vector becomes the new audit {e floor};
    - {b windowed auditing}: the execution retained between barriers is
      checked ({!Checker.check} with [?floor]) and discarded — safety,
      read legality and Theorem 4's zero-unnecessary-delay bound hold
      per window, while memory stays flat;
    - {b retired-state reclamation}: once the floor passes a retired
      occupant's final write counter the slot is freed, anti-entropy
      logs are pruned to the floor, and receiver-side dedup state folds
      into watermarks ({!Dsm_sim.Reliable_channel.gc_dedup});
    - {b in-run monitors}: ghost-dot scans (a dot beyond the floor,
      from a generation the retirement ledger does not attribute, or
      applied twice), value forgery against the workload's
      dot-determined values, cross-window duplicate applies, memory
      high-water via [Gc], and wire cost via {!Dsm_obs.Wire}.

    Determinism: all randomness flows from [seed] through split
    {!Dsm_sim.Rng} streams, and the outcome carries a [digest] mixed
    from every barrier's common vector — two runs with equal configs
    must produce equal digests (the replay test pins this). *)

type config = {
  universe : int;  (** slot count; all slots start as members *)
  vars : int;
  epochs : int;
  window : int;  (** epochs between convergence barriers *)
  ops_per_epoch : int;
  write_ratio : float;
  churn_prob : float;  (** per-epoch probability of one churn action *)
  fault_prob : float;  (** per-epoch probability of one link fault *)
  min_live : int;  (** never churn below this many stable members *)
  drop : float;
  duplicate : float;
  corrupt : float;
  latency : Dsm_sim.Latency.t;
  epoch_len : float;
  retransmit_after : float;
  sync_rounds : int;
  flush_poll : float;
  seed : int;
  max_steps : int;  (** per engine drain *)
  max_pump_rounds : int;  (** barrier convergence bound *)
  strict_delays : bool;
      (** count unnecessary delays against [clean] (Theorem 4 — set
          for OptP, clear for the conservative baselines) *)
}

val default : config
(** 6 slots, 4 variables, 1000 epochs in windows of 20, lossy lognormal
    links, [strict_delays] on. *)

type window_report = {
  w_index : int;
  w_end_epoch : int;
  w_time : float;
  w_writes : int;
  w_applies : int;
  w_delays : int;
  w_unnecessary : int;
  w_violations : int;
  w_lost : int;
  w_ghost_dots : int;
  w_forged_values : int;
  w_cross_window_dups : int;
  w_double_applies : int;
  w_pump_rounds : int;
  w_live : int;
  w_floor_total : int;  (** sum of the new floor's components *)
  w_reclaimed_slots : int;  (** slots freed at this barrier *)
  w_live_words : int;  (** [Gc.stat] after compaction *)
  w_log_entries : int;  (** anti-entropy log entries retained *)
  w_dedup_entries : int;  (** channel dedup records retained *)
  w_wire_bytes : int;  (** cumulative wire cost at the barrier *)
}

type outcome = {
  protocol_name : string;
  config : config;
  windows : window_report list;
  occupants : int;  (** logical-process lifetimes ever started *)
  adoptions : int;
  rejoins : int;
  leaves : int;
  crashes : int;
  frees : int;
  max_generation : int;
  total_writes : int;
  total_applies : int;
  total_delays : int;
  unnecessary_delays : int;
  violations : int;
  lost : int;
  ghost_dots : int;
  forged_values : int;
  cross_window_dups : int;
  double_applies : int;
  ops_skipped_inactive : int;
  replayed_writes : int;
  stale_deliveries_dropped : int;
  chan_stale_quarantined : int;
  net_stale_dropped : int;
  net_nonmember_dropped : int;
  corrupt_dropped : int;
  retransmissions : int;
  duplicates_discarded : int;
  aborted_payloads : int;
  payloads_sent : int;
  frames_sent : int;
  wire_bytes_total : int;
  max_live_words : int;
  max_log_entries : int;
  max_dedup_entries : int;
  dedup_reclaimed : int;
  log_reclaimed : int;
  vec_width : int;  (** wire vector width — the universe, not the
                        occupant count *)
  digest : int;  (** replay fingerprint: equal configs ⟹ equal digests *)
  engine_steps : int;
  end_time : float;
  clean : bool;
}

val run :
  (module Dsm_core.Protocol.S with type t = 'pt and type msg = 'pm) ->
  config ->
  outcome
(** Runs the soak to completion.
    @raise Invalid_argument on a malformed config, or for protocols
    that do not support [adopt] (static topologies).
    @raise Failure when a barrier fails to converge within
    [max_pump_rounds] or a drain exceeds [max_steps]. *)

val high_water_table : outcome -> (string * int) list
(** The endurance claim as rows: occupant lifetimes and reuse counts
    against the bounds reclamation held (vector width, live words, log
    and dedup high-water). *)

val to_json : outcome -> Dsm_stats.Json.t
(** [causal-dsm-bench/v1] section ["soak"] — the [BENCH_soak.json]
    artifact. Windows are sampled (first, quartiles, last two) to keep
    the artifact small. *)

val pp_outcome : Format.formatter -> outcome -> unit
