module Sim_time = Dsm_sim.Sim_time
module Dot = Dsm_vclock.Dot

(* marker significance, highest first *)
let rank = function
  | 'W' -> 5
  | '*' -> 4
  | 'A' -> 3
  | 'x' -> 2
  | 'R' -> 1
  | 'v' -> 0
  | _ -> -1

let marker_of (e : Execution.event) =
  match e.kind with
  | Execution.Apply { dot; delayed; _ } ->
      if Dot.replica dot = e.proc then Some 'W'
      else if delayed then Some '*'
      else Some 'A'
  | Execution.Receipt _ -> Some 'v'
  | Execution.Return _ -> Some 'R'
  | Execution.Skip _ -> Some 'x'
  | Execution.Send _ | Execution.Blocked _ -> None (* coincides with the issuer's W *)

let render ?(width = 72) ?(legend = true) exec =
  if width < 8 then invalid_arg "Timeline.render: width must be >= 8";
  let events = Execution.events exec in
  let n = Execution.n_processes exec in
  let t_end =
    List.fold_left
      (fun acc (e : Execution.event) ->
        Float.max acc (Sim_time.to_float e.time))
      0. events
  in
  let scale = if t_end > 0. then float_of_int (width - 1) /. t_end else 0. in
  let lanes = Array.init n (fun _ -> Bytes.make width '-') in
  List.iter
    (fun (e : Execution.event) ->
      match marker_of e with
      | None -> ()
      | Some m ->
          let col =
            min (width - 1)
              (int_of_float (Sim_time.to_float e.time *. scale))
          in
          let cur = Bytes.get lanes.(e.proc) col in
          if rank m > rank cur then Bytes.set lanes.(e.proc) col m)
    events;
  let buf = Buffer.create (n * (width + 8)) in
  Buffer.add_string buf
    (Printf.sprintf "t = 0 %s %.1f\n"
       (String.make (max 0 (width - 12)) ' ')
       t_end);
  Array.iteri
    (fun p lane ->
      Buffer.add_string buf (Printf.sprintf "p%-2d |%s|\n" (p + 1)
        (Bytes.to_string lane)))
    lanes;
  if legend then
    Buffer.add_string buf
      "     W own write   v receipt   A apply   * delayed apply   R \
       read   x skip\n";
  Buffer.contents buf
