type status = Delivery_index.status =
  | Ready
  | Wait_for of { counter : int; count : int }
  | Stuck

module type S = sig
  type 'a t

  val create : unit -> 'a t
  val add : 'a t -> status:('a -> status) -> 'a -> unit
  val take_ready : 'a t -> status:('a -> status) -> 'a option
  val note_advance :
    'a t -> status:('a -> status) -> counter:int -> count:int -> unit

  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val to_list : 'a t -> 'a list
  val remove_all : 'a t -> f:('a -> bool) -> 'a list
  val high_watermark : 'a t -> int
  val total_buffered : 'a t -> int
  val oracle_calls : 'a t -> int
  val clear : 'a t -> unit
end

module Scan : S = struct
  type 'a t = 'a Mailbox.t

  let create = Mailbox.create
  let add t ~status:_ x = Mailbox.add t x

  let take_ready t ~status =
    Mailbox.take_first t ~f:(fun x ->
        match status x with Ready -> true | Wait_for _ | Stuck -> false)

  let note_advance _ ~status:_ ~counter:_ ~count:_ = ()
  let length = Mailbox.length
  let is_empty = Mailbox.is_empty
  let to_list = Mailbox.to_list
  let remove_all = Mailbox.remove_all
  let high_watermark = Mailbox.high_watermark
  let total_buffered = Mailbox.total_buffered
  let oracle_calls = Mailbox.scans
  let clear = Mailbox.clear
end

module Indexed : S = Delivery_index
