(** Pluggable delivery-buffer strategy for class-[𝒫] protocols.

    Every protocol in the repository buffers early write messages and
    releases them when its apply counters catch up. This module
    abstracts {e how} the buffer finds releasable messages, so each
    protocol can be instantiated against either implementation:

    - {!Scan} — the seed discipline: a plain {!Mailbox}, rescanned
      oldest-first after every apply. O(b) per apply; kept as the
      executable reference implementation for differential testing.
    - {!Indexed} — the {!Delivery_index}: counter-indexed wakeups,
      O(1) amortized per delivered message.

    Both are driven through the same {!Delivery_index.status} oracle
    and are observationally identical: same take order (oldest ready
    first), same occupancy statistics, same treatment of stuck
    messages. [Scan] simply ignores subscriptions and re-evaluates the
    oracle on every buffered message instead. *)

type status = Delivery_index.status =
  | Ready
  | Wait_for of { counter : int; count : int }
  | Stuck

module type S = sig
  type 'a t

  val create : unit -> 'a t
  val add : 'a t -> status:('a -> status) -> 'a -> unit
  val take_ready : 'a t -> status:('a -> status) -> 'a option
  val note_advance :
    'a t -> status:('a -> status) -> counter:int -> count:int -> unit

  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val to_list : 'a t -> 'a list
  val remove_all : 'a t -> f:('a -> bool) -> 'a list
  val high_watermark : 'a t -> int
  val total_buffered : 'a t -> int

  val oracle_calls : 'a t -> int
  (** Status-oracle evaluations so far — "wakeup scans". For {!Scan}
      this counts the rescan predicate evaluations; for {!Indexed} the
      routing and take-time re-validations. The ratio of the two on the
      same run is the measured win of counter-indexed wakeups. *)

  val clear : 'a t -> unit
end

module Scan : S
module Indexed : S
