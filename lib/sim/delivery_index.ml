type status =
  | Ready
  | Wait_for of { counter : int; count : int }
  | Stuck

type 'a entry = { id : int; payload : 'a; mutable alive : bool }

type 'a t = {
  mutable next_id : int;
  live : (int, 'a entry) Hashtbl.t;  (* id -> entry, every buffered message *)
  waiters : (int * int, 'a entry list ref) Hashtbl.t;
      (* (counter, count) -> subscribers; buckets may retain dead
         entries, which are skipped when the cell fires *)
  mutable ready : int list;  (* ids, ascending: oldest ready first *)
  mutable high : int;
  mutable total : int;
  mutable oracle : int;  (* status-oracle evaluations (wakeup scans) *)
}

let create () =
  {
    next_id = 0;
    live = Hashtbl.create 64;
    waiters = Hashtbl.create 64;
    ready = [];
    high = 0;
    total = 0;
    oracle = 0;
  }

let length t = Hashtbl.length t.live
let is_empty t = Hashtbl.length t.live = 0

let subscribe t e ~counter ~count =
  let key = (counter, count) in
  match Hashtbl.find_opt t.waiters key with
  | Some bucket -> bucket := e :: !bucket
  | None -> Hashtbl.add t.waiters key (ref [ e ])

let rec insert_ready id = function
  | [] -> [ id ]
  | id' :: _ as l when id < id' -> id :: l
  | id' :: rest -> id' :: insert_ready id rest

(* route a live entry by its current status; ready ids go through
   [enqueue] so batch wakeups can sort once instead of inserting one by
   one *)
let route t ~status ~enqueue e =
  t.oracle <- t.oracle + 1;
  match status e.payload with
  | Ready -> enqueue e.id
  | Wait_for { counter; count } -> subscribe t e ~counter ~count
  | Stuck -> ()  (* parked: stays in [live], never re-examined *)

let add t ~status x =
  let e = { id = t.next_id; payload = x; alive = true } in
  t.next_id <- t.next_id + 1;
  Hashtbl.add t.live e.id e;
  t.total <- t.total + 1;
  let len = Hashtbl.length t.live in
  if len > t.high then t.high <- len;
  route t ~status ~enqueue:(fun id -> t.ready <- insert_ready id t.ready) e

let rec merge_sorted a b =
  match (a, b) with
  | [], l | l, [] -> l
  | x :: xs, (y :: _ as l) when x < y -> x :: merge_sorted xs l
  | l, y :: ys -> y :: merge_sorted l ys

let note_advance t ~status ~counter ~count =
  let key = (counter, count) in
  match Hashtbl.find_opt t.waiters key with
  | None -> ()
  | Some bucket ->
      Hashtbl.remove t.waiters key;
      let woken = ref [] in
      List.iter
        (fun e ->
          if e.alive then
            route t ~status ~enqueue:(fun id -> woken := id :: !woken) e)
        !bucket;
      if !woken <> [] then
        t.ready <- merge_sorted (List.sort Int.compare !woken) t.ready

let rec take_ready t ~status =
  match t.ready with
  | [] -> None
  | id :: rest -> (
      t.ready <- rest;
      match Hashtbl.find_opt t.live id with
      | None -> take_ready t ~status  (* removed while queued *)
      | Some e when not e.alive -> take_ready t ~status
      | Some e -> (
          (* re-validate: a duplicate can lose deliverability (go
             stuck) between wakeup and take *)
          t.oracle <- t.oracle + 1;
          match status e.payload with
          | Ready ->
              e.alive <- false;
              Hashtbl.remove t.live id;
              Some e.payload
          | Wait_for { counter; count } ->
              subscribe t e ~counter ~count;
              take_ready t ~status
          | Stuck -> take_ready t ~status))

let live_entries_oldest_first t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.live []
  |> List.sort (fun a b -> Int.compare a.id b.id)

let to_list t = List.map (fun e -> e.payload) (live_entries_oldest_first t)

let remove_all t ~f =
  let removed =
    List.filter (fun e -> f e.payload) (live_entries_oldest_first t)
  in
  List.iter
    (fun e ->
      e.alive <- false;
      Hashtbl.remove t.live e.id)
    removed;
  List.map (fun e -> e.payload) removed

let high_watermark t = t.high
let total_buffered t = t.total
let oracle_calls t = t.oracle

let clear t =
  Hashtbl.reset t.live;
  Hashtbl.reset t.waiters;
  t.ready <- []
