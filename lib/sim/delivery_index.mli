(** Counter-indexed delivery buffer: O(1) amortized wakeups.

    The seed {!Mailbox} rediscovers deliverability by rescanning the
    whole buffer after every apply (O(b) per apply, O(b²) per cascade).
    But the wait condition of the paper's Figure 5 — and of every
    protocol in the class [𝒫] — has a very particular shape: a buffered
    write is blocked on a {e specific} per-process counter reaching a
    {e specific} value (either the sender-sequence gap
    [Apply[u] = W[u] − 1] or a cross-process component
    [W[t] ≤ Apply[t]]). Counters only ever advance by [+1] steps, so a
    blocked message can subscribe to the single [(counter, count)] cell
    it is waiting on, and an apply that advances a counter to [c]
    re-examines {e only} the messages subscribed to exactly [(counter,
    c)] — no scan of the rest of the buffer.

    The protocol describes a message's situation with a {!status}
    oracle; the index never inspects payloads itself:

    - [Ready] — all enabling events have occurred; deliverable now.
    - [Wait_for {counter; count}] — blocked at least until the abstract
      counter [counter] reaches [count]. {b Contract:} [count] must be
      strictly greater than the counter's current value, and the caller
      must report {e every} [+1] advance of every counter through
      {!note_advance}. Protocols over an n-vector [Apply] use
      [counter = k]; the partial-replication matrix [Applied[y][t]]
      flattens to [counter = y·n + t].
    - [Stuck] — can never become deliverable (e.g. a duplicate whose
      sequence number the apply counter has already passed). The
      message is parked: it stays in the buffer (and in [length]), is
      never re-examined, and never returned — exactly the seed
      [Mailbox]'s behaviour of rescanning it fruitlessly forever,
      minus the rescans.

    Complexity: each message is re-evaluated only when a constraint it
    registered on fires. A message registers on at most [n + 1] distinct
    cells over its lifetime (each counter component at most once, the
    sender gap at most once), each evaluation is one O(n) status call,
    and an apply touches one hash cell plus the messages woken — O(1)
    amortized per delivered message, against the seed's O(b) per apply.

    Determinism: among simultaneously-ready messages, {!take_ready}
    always returns the {e oldest} (insertion order), matching the seed
    [Mailbox.take_first] discipline message-for-message — the
    differential suite in [test/test_differential.ml] holds the two
    implementations to byte-identical apply sequences. *)

type status =
  | Ready
  | Wait_for of { counter : int; count : int }
  | Stuck

type 'a t

val create : unit -> 'a t

val add : 'a t -> status:('a -> status) -> 'a -> unit
(** Insert a message, routing it by [status]: ready messages queue for
    {!take_ready}, waiting messages subscribe to their cell, stuck
    messages are parked. *)

val take_ready : 'a t -> status:('a -> status) -> 'a option
(** Remove and return the oldest ready message, if any. Each candidate
    is re-validated with [status] before being returned (a duplicate
    can lose deliverability while queued); messages that re-block are
    re-subscribed, not lost. *)

val note_advance : 'a t -> status:('a -> status) -> counter:int -> count:int -> unit
(** [note_advance t ~status ~counter ~count] reports that [counter]
    just reached [count] (callers invoke it after every [+1] tick of a
    tracked counter). Wakes exactly the messages subscribed to
    [(counter, count)] and re-routes each by its new [status]. *)

val length : 'a t -> int
(** Number of buffered messages, parked ones included. O(1). *)

val is_empty : 'a t -> bool

val to_list : 'a t -> 'a list
(** All buffered messages, oldest first (insertion order). O(b log b);
    used only by slow paths (writing-semantics skip scans, debugging). *)

val remove_all : 'a t -> f:('a -> bool) -> 'a list
(** Remove every buffered message satisfying [f]; returns them oldest
    first. Subscriptions of removed messages are cancelled lazily. *)

val high_watermark : 'a t -> int
(** Largest occupancy ever observed. *)

val total_buffered : 'a t -> int
(** Total number of messages ever added (monotone counter). *)

val oracle_calls : 'a t -> int
(** Status-oracle evaluations performed so far (routing + take-time
    re-validation) — the index's "wakeup scans" metric, directly
    comparable to {!Mailbox.scans} for the rescan discipline. *)

val clear : 'a t -> unit
(** Drop all buffered messages; statistics counters are kept, matching
    [Mailbox.clear]. *)
