type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : Sim_time.t;
  mutable executed : int;
}

let create () =
  { queue = Event_queue.create (); clock = Sim_time.zero; executed = 0 }

let now t = t.clock

let schedule_at t at f =
  if Sim_time.(at < t.clock) then
    invalid_arg "Engine.schedule_at: cannot schedule in the virtual past";
  Event_queue.schedule t.queue ~at f

let schedule_after t d f = schedule_at t (Sim_time.add t.clock d) f
let schedule_now t f = schedule_at t t.clock f

let schedule_every t ~every ~until f =
  if (not (Float.is_finite every)) || every <= 0. then
    invalid_arg "Engine.schedule_every: period must be positive and finite";
  let rec tick at () =
    f ();
    let next = Sim_time.add at every in
    if Sim_time.(next <= until) then schedule_at t next (tick next)
  in
  let first = Sim_time.add t.clock every in
  if Sim_time.(first <= until) then schedule_at t first (tick first)

type stop_reason = Drained | Hit_step_limit | Hit_time_limit

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (at, f) ->
      t.clock <- at;
      t.executed <- t.executed + 1;
      f ();
      true

let run ?max_steps ?until t =
  let over_steps () =
    match max_steps with Some m -> t.executed >= m | None -> false
  in
  let over_time () =
    match (until, Event_queue.peek_time t.queue) with
    | Some horizon, Some next -> Sim_time.(horizon < next)
    | _ -> false
  in
  let rec loop () =
    if over_steps () then Hit_step_limit
    else if over_time () then Hit_time_limit
    else if step t then loop ()
    else Drained
  in
  loop ()

let steps_executed t = t.executed
let pending t = Event_queue.size t.queue

let pp_stop_reason ppf = function
  | Drained -> Format.pp_print_string ppf "drained"
  | Hit_step_limit -> Format.pp_print_string ppf "step-limit"
  | Hit_time_limit -> Format.pp_print_string ppf "time-limit"
