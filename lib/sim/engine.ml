module Qi = Event_queue.Indexed
module Qh = Event_queue.Heap

type queue_impl = Indexed | Heap

(* The implementation is picked once at [create] and dispatched with a
   two-constructor match — static, allocation-free, no first-class
   modules or closure tables on the hot path. *)
type queue =
  | Q_indexed of (unit -> unit) Qi.t
  | Q_heap of (unit -> unit) Qh.t

type t = {
  queue : queue;
  clock : float array;
      (* one-element flat float array: per-event clock updates in the
         drain loops store an unboxed float, never an allocation or a
         write barrier (a [float ref] would box every store — ['a ref]
         is a generic record, so its float instance is not flat) *)
  mutable executed : int;
}

let create ?(queue = Indexed) () =
  let queue =
    match queue with
    | Indexed -> Q_indexed (Qi.create ())
    | Heap -> Q_heap (Qh.create ())
  in
  { queue; clock = Array.make 1 0.; executed = 0 }

let queue_impl t =
  match t.queue with Q_indexed _ -> Indexed | Q_heap _ -> Heap

let[@inline] now t = Sim_time.of_float (Array.unsafe_get t.clock 0)

let[@inline] schedule_at t at f =
  if Sim_time.to_float at < Array.unsafe_get t.clock 0 then
    invalid_arg "Engine.schedule_at: cannot schedule in the virtual past";
  match t.queue with
  | Q_indexed q -> Qi.schedule q ~at f
  | Q_heap q -> Qh.schedule q ~at f

let schedule_after t d f = schedule_at t (Sim_time.add (now t) d) f
let schedule_now t f = schedule_at t (now t) f

let schedule_every t ~every ~until f =
  if (not (Float.is_finite every)) || every <= 0. then
    invalid_arg "Engine.schedule_every: period must be positive and finite";
  let rec tick at () =
    f ();
    let next = Sim_time.add at every in
    if Sim_time.(next <= until) then schedule_at t next (tick next)
  in
  let first = Sim_time.add (now t) every in
  if Sim_time.(first <= until) then schedule_at t first (tick first)

type stop_reason = Drained | Hit_step_limit | Hit_time_limit

let step t =
  match t.queue with
  | Q_indexed q ->
      if Qi.is_empty q then false
      else begin
        let at = Qi.next_time_unsafe q in
        let f = Qi.pop_exn q in
        Array.unsafe_set t.clock 0 at;
        t.executed <- t.executed + 1;
        f ();
        true
      end
  | Q_heap q -> (
      match Qh.pop q with
      | None -> false
      | Some (at, f) ->
          Array.unsafe_set t.clock 0 (Sim_time.to_float at);
          t.executed <- t.executed + 1;
          f ();
          true)

let run ?max_steps ?until t =
  let limit = match max_steps with Some m -> m | None -> max_int in
  (* per-implementation loops keep the steady-state path free of
     per-step option and pair allocations *)
  (* the [until] option is unpacked once: the per-event horizon check
     in the indexed loop is a raw float compare *)
  let has_horizon, horizon =
    match until with
    | Some h -> (true, Sim_time.to_float h)
    | None -> (false, 0.)
  in
  match t.queue with
  | Q_indexed q when max_steps = None && not has_horizon ->
      (* bare drain: the common shape (no step or time limit) runs with
         no per-event limit checks at all *)
      let rec loop () =
        if Qi.is_empty q then Drained
        else begin
          let at = Qi.next_time_unsafe q in
          let f = Qi.pop_exn q in
          Array.unsafe_set t.clock 0 at;
          t.executed <- t.executed + 1;
          f ();
          loop ()
        end
      in
      loop ()
  | Q_indexed q ->
      let rec loop () =
        if t.executed >= limit then Hit_step_limit
        else if Qi.is_empty q then Drained
        else
          let at = Qi.next_time_unsafe q in
          if has_horizon && horizon < at then Hit_time_limit
          else begin
            let f = Qi.pop_exn q in
            Array.unsafe_set t.clock 0 at;
            t.executed <- t.executed + 1;
            f ();
            loop ()
          end
      in
      loop ()
  | Q_heap q ->
      let rec loop () =
        if t.executed >= limit then Hit_step_limit
        else if Qh.is_empty q then Drained
        else
          let at = Qh.next_time_exn q in
          if has_horizon && horizon < Sim_time.to_float at then
            Hit_time_limit
          else begin
            let f = Qh.pop_exn q in
            Array.unsafe_set t.clock 0 (Sim_time.to_float at);
            t.executed <- t.executed + 1;
            f ();
            loop ()
          end
      in
      loop ()

let steps_executed t = t.executed

let pending t =
  match t.queue with Q_indexed q -> Qi.size q | Q_heap q -> Qh.size q

let pp_stop_reason ppf = function
  | Drained -> Format.pp_print_string ppf "drained"
  | Hit_step_limit -> Format.pp_print_string ppf "step-limit"
  | Hit_time_limit -> Format.pp_print_string ppf "time-limit"
