(** Discrete-event simulation engine.

    The engine owns the virtual clock and an event queue of thunks. The
    model is the classic sequential discrete-event loop: pop the
    earliest event, advance the clock to its timestamp, execute its
    action (which may schedule further events), repeat. Simulated
    processes are therefore interleaved at event granularity — each
    protocol handler runs atomically, exactly matching the paper's
    "executed atomically" procedure annotations (Figures 4–5). *)

type t

type queue_impl =
  | Indexed
      (** The flat int-indexed queue ({!Event_queue.Indexed}) —
          allocation-free in steady state. The default. *)
  | Heap
      (** The seed pairing-heap queue ({!Event_queue.Heap}), kept as the
          differential-testing reference. *)

val create : ?queue:queue_impl -> unit -> t
(** [create ()] uses the [Indexed] queue; [~queue:Heap] selects the
    reference implementation. Both drain any schedule in the identical
    [(time, seq)] order, so a run is bit-for-bit reproducible across
    implementations. *)

val queue_impl : t -> queue_impl

val now : t -> Sim_time.t
(** Current virtual time (the timestamp of the event being executed, or
    of the last executed event between steps). *)

val schedule_at : t -> Sim_time.t -> (unit -> unit) -> unit
(** @raise Invalid_argument if the target time is in the virtual past. *)

val schedule_after : t -> float -> (unit -> unit) -> unit
(** [schedule_after t d f] runs [f] at [now t + d].
    @raise Invalid_argument if [d] is negative or not finite. *)

val schedule_now : t -> (unit -> unit) -> unit
(** Runs [f] at the current time, after all other work already queued
    for this instant. *)

val schedule_every : t -> every:float -> until:Sim_time.t -> (unit -> unit) -> unit
(** [schedule_every t ~every ~until f] runs [f] at [now + every],
    [now + 2*every], … for every tick at or before [until]. The ticks
    are ordinary events: they keep the queue non-empty until [until]
    passes, so periodic drivers (heartbeats, detectors) must bound
    [until] or the engine never drains.
    @raise Invalid_argument if [every] is not positive and finite. *)

type stop_reason =
  | Drained  (** The event queue became empty. *)
  | Hit_step_limit
  | Hit_time_limit

val run : ?max_steps:int -> ?until:Sim_time.t -> t -> stop_reason
(** Executes events until the queue drains or a limit is hit. When
    stopping on [?until], events strictly after the horizon stay in the
    queue and the clock is left at the last executed event. *)

val step : t -> bool
(** Executes one event; [false] if the queue was empty. *)

val steps_executed : t -> int
val pending : t -> int

val pp_stop_reason : Format.formatter -> stop_reason -> unit
