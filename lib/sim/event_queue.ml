module type S = sig
  type 'a t

  val create : unit -> 'a t
  val schedule : 'a t -> at:Sim_time.t -> 'a -> unit
  val pop : 'a t -> (Sim_time.t * 'a) option
  val next_time_exn : 'a t -> Sim_time.t
  val pop_exn : 'a t -> 'a
  val peek_time : 'a t -> Sim_time.t option
  val size : 'a t -> int
  val is_empty : 'a t -> bool
  val clear : 'a t -> unit
  val scheduled_total : 'a t -> int
  val retained_payloads : 'a t -> int
  val capacity : 'a t -> int
end

(* ------------------------------------------------------------------ *)
(* Indexed: flat int-indexed calendar queue (Brown 1988) over          *)
(* parallel arrays.                                                    *)
(*                                                                     *)
(* Events live in a slot arena: [etime]/[eseq]/[payloads] are          *)
(* slot-indexed and written once per event, so nothing is ever moved   *)
(* or reboxed after [schedule] and the GC write barrier is crossed     *)
(* exactly once (the payload store). Buckets are intrusive sorted      *)
(* lists threaded through [enext]: bucket [floor(t/width) mod          *)
(* nbuckets] holds its events in (time, seq) order, equal timestamps   *)
(* always land in the same bucket, and the scheduling-order [seq]      *)
(* breaks ties — so the drain order is exactly the reference heap's.   *)
(* Recycled slots are threaded through [enext] too (as a free list     *)
(* headed by [free_head]), and slots past the [used] watermark have    *)
(* never been written: growing is four array blits with no tail        *)
(* initialization beyond [Array.make]'s.                               *)
(*                                                                     *)
(* [pop] walks day-by-day from the cursor: the head of the current     *)
(* bucket is the global minimum iff it falls inside the current day    *)
(* (each bucket list is sorted, and a day's events map to exactly one  *)
(* bucket). A year of empty buckets falls back to a direct min-scan    *)
(* over bucket heads and jumps the cursor. [schedule] appends at the   *)
(* bucket tail when the key is maximal there (the common case: times   *)
(* arrive roughly in order, and same-instant bursts carry increasing   *)
(* seqs), otherwise inserts by scan. The bucket count and width adapt  *)
(* on a deterministic rule — rebucket when [size] outgrows             *)
(* [2 * nbuckets], sizing width to twice the mean inter-event gap —    *)
(* so the amortized cost of both operations is O(1) with no            *)
(* allocation in steady state.                                         *)
(*                                                                     *)
(* The engine peeks before it pops, so the scan result (slot and       *)
(* cursor position) is memoized in [peeked] and consumed by the next   *)
(* [pop]; any [schedule] or [clear] invalidates it.                    *)
(*                                                                     *)
(* [dummy] is an immediate ([()]), so [Array.make cap dummy] builds a  *)
(* generic array, never a flat float array — storing [Obj.repr] of a  *)
(* boxed payload into it is always representation-safe.                *)
(* ------------------------------------------------------------------ *)

module Indexed = struct
  type 'a t = {
    (* slot arena *)
    mutable etime : float array;
    mutable eseq : int array;
    mutable enext : int array;
        (* intrusive list: bucket chain for pending slots, free chain
           for recycled ones; -1 ends both *)
    mutable payloads : Obj.t array;
    mutable free_head : int;  (* recycled-slot list through [enext] *)
    mutable used : int;  (* slots [used..cap) have never been written *)
    (* calendar *)
    mutable heads : int array;  (* bucket -> slot | -1 *)
    mutable tails : int array;
    mutable nbuckets : int;  (* power of two *)
    mutable width : float;  (* day length; > 0 *)
    mutable inv_width : float;
        (* 1/width; the day of an event is always computed as
           [int_of_float (time *. inv_width)] — one shared expression,
           so insertion and the cursor walk can never disagree about
           which day an event belongs to *)
    mutable cur : int;  (* bucket the cursor is draining *)
    mutable day : int;  (* the day [cur] currently represents *)
    mutable size : int;
    mutable next_seq : int;
    mutable peeked : int;  (* slot found by the last peek, or -1 *)
  }

  let dummy = Obj.repr ()

  (* Releasing a payload slot MUST go through the ordinary barriered
     store ([caml_modify]). The multicore major GC's snapshot-at-the-
     beginning invariant relies on the deletion barrier darkening the
     overwritten pointer: a raw store (e.g. through an [int array] view
     of the block) would let the marker miss the popped payload — and
     everything reachable only through it, such as the environment of a
     periodic-event closure rescheduled during the same cycle — and the
     sweeper would reclaim live objects. *)
  let[@inline] store_dummy (ps : Obj.t array) slot =
    Array.unsafe_set ps slot dummy

  (* 512 buckets from the start: a day per simulated time unit for
     typical workloads, and queues only rebucket once they hold more
     than 1024 pending events — cold-start runs (create, schedule a
     few hundred, drain) never pay a mid-run rebucket *)
  let initial_buckets = 512

  let create () =
    {
      etime = [||];
      eseq = [||];
      enext = [||];
      payloads = [||];
      free_head = -1;
      used = 0;
      heads = Array.make initial_buckets (-1);
      tails = Array.make initial_buckets (-1);
      nbuckets = initial_buckets;
      width = 1.0;
      inv_width = 1.0;
      cur = 0;
      day = 0;
      size = 0;
      next_seq = 0;
      peeked = -1;
    }

  (* only called with the free list empty and every slot in use, so the
     blits copy exactly the live prefix; the tail beyond [used] stays
     untouched until the watermark reaches it *)
  let grow_slots t =
    let cap = Array.length t.etime in
    (* 0 -> 64 -> 1024, then x4: one small minor-heap step for tiny
       queues, then a single jump past the major-heap allocation sizes
       the cold-start ramp would otherwise churn through *)
    let cap' = if cap = 0 then 64 else if cap = 64 then 1024 else cap * 4 in
    let etime = Array.create_float cap' in
    let eseq = Array.make cap' 0 in
    let enext = Array.make cap' (-1) in
    let payloads = Array.make cap' dummy in
    Array.blit t.etime 0 etime 0 cap;
    Array.blit t.eseq 0 eseq 0 cap;
    Array.blit t.enext 0 enext 0 cap;
    Array.blit t.payloads 0 payloads 0 cap;
    t.etime <- etime;
    t.eseq <- eseq;
    t.enext <- enext;
    t.payloads <- payloads

  (* thread [slot] into bucket [b]'s sorted list; its key is
     [(at, seq)], already written to the arena *)
  let insert_slot t slot at seq b =
    let tail = Array.unsafe_get t.tails b in
    if tail = -1 then begin
      Array.unsafe_set t.heads b slot;
      Array.unsafe_set t.tails b slot;
      Array.unsafe_set t.enext slot (-1)
    end
    else begin
      let tt = Array.unsafe_get t.etime tail in
      if at > tt || (at = tt && seq > Array.unsafe_get t.eseq tail) then begin
        (* tail append: in-order arrivals and same-instant bursts *)
        Array.unsafe_set t.enext tail slot;
        Array.unsafe_set t.tails b slot;
        Array.unsafe_set t.enext slot (-1)
      end
      else begin
        let head = Array.unsafe_get t.heads b in
        let ht = Array.unsafe_get t.etime head in
        if at < ht || (at = ht && seq < Array.unsafe_get t.eseq head)
        then begin
          Array.unsafe_set t.enext slot head;
          Array.unsafe_set t.heads b slot
        end
        else begin
          (* strictly between head and tail: sorted scan *)
          let p = ref head in
          let scanning = ref true in
          while !scanning do
            let nx = Array.unsafe_get t.enext !p in
            if nx = -1 then scanning := false
            else begin
              let nt = Array.unsafe_get t.etime nx in
              if at < nt || (at = nt && seq < Array.unsafe_get t.eseq nx)
              then scanning := false
              else p := nx
            end
          done;
          let nx = Array.unsafe_get t.enext !p in
          Array.unsafe_set t.enext slot nx;
          Array.unsafe_set t.enext !p slot;
          if nx = -1 then Array.unsafe_set t.tails b slot
        end
      end
    end

  (* double the bucket count and re-derive the width from the live
     span: targets a mean occupancy of ~1/2 event per bucket, so both
     the insert scan and the day walk stay O(1) amortized *)
  let rebucket t =
    let live = Array.make t.size 0 in
    let k = ref 0 in
    for b = 0 to t.nbuckets - 1 do
      let s = ref t.heads.(b) in
      while !s <> -1 do
        live.(!k) <- !s;
        incr k;
        s := t.enext.(!s)
      done
    done;
    let nb = ref initial_buckets in
    while !nb < 2 * t.size do
      nb := !nb * 2
    done;
    let tmin = ref infinity and tmax = ref neg_infinity in
    Array.iter
      (fun s ->
        let x = t.etime.(s) in
        if x < !tmin then tmin := x;
        if x > !tmax then tmax := x)
      live;
    let span = !tmax -. !tmin in
    let width =
      if t.size <= 1 || span <= 0. then t.width
      else Float.max 1e-9 (span /. float_of_int t.size *. 2.)
    in
    t.nbuckets <- !nb;
    t.width <- width;
    let inv_width = 1. /. width in
    t.inv_width <- inv_width;
    t.heads <- Array.make !nb (-1);
    t.tails <- Array.make !nb (-1);
    t.day <- int_of_float (!tmin *. inv_width);
    t.cur <- t.day land (!nb - 1);
    let mask = !nb - 1 in
    Array.iter
      (fun s ->
        let at = t.etime.(s) in
        insert_slot t s at
          t.eseq.(s)
          (int_of_float (at *. inv_width) land mask))
      live

  let schedule t ~at payload =
    let at = Sim_time.to_float at in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let slot =
      let fh = t.free_head in
      if fh >= 0 then begin
        t.free_head <- Array.unsafe_get t.enext fh;
        fh
      end
      else begin
        if t.used >= Array.length t.etime then grow_slots t;
        let s = t.used in
        t.used <- s + 1;
        s
      end
    in
    Array.unsafe_set t.etime slot at;
    Array.unsafe_set t.eseq slot seq;
    Array.unsafe_set t.payloads slot (Obj.repr payload);
    t.size <- t.size + 1;
    t.peeked <- -1;
    let d = int_of_float (at *. t.inv_width) in
    (* an event before the cursor's day would be walked past: rewind *)
    if d < t.day then begin
      t.day <- d;
      t.cur <- d land (t.nbuckets - 1)
    end;
    insert_slot t slot at seq (d land (t.nbuckets - 1));
    if t.size > 2 * t.nbuckets then rebucket t

  (* advance the cursor to the earliest event's slot; caller guarantees
     non-emptiness. O(1) amortized: each skipped bucket is an empty
     day, and a full empty year falls back to a direct head scan. *)
  let find_min t =
    let mask = t.nbuckets - 1 in
    let found = ref (-1) in
    let scanned = ref 0 in
    while !found = -1 do
      let h = Array.unsafe_get t.heads t.cur in
      if
        h <> -1
        && int_of_float (Array.unsafe_get t.etime h *. t.inv_width) = t.day
      then found := h
      else begin
        incr scanned;
        if !scanned > t.nbuckets then begin
          (* a whole year of misses: jump to the min head directly *)
          let best = ref (-1) and bt = ref infinity and bs = ref max_int in
          for b = 0 to t.nbuckets - 1 do
            let h = t.heads.(b) in
            if h <> -1 then begin
              let ht = t.etime.(h) and hs = t.eseq.(h) in
              if ht < !bt || (ht = !bt && hs < !bs) then begin
                best := h;
                bt := ht;
                bs := hs
              end
            end
          done;
          t.day <- int_of_float (!bt *. t.inv_width);
          t.cur <- t.day land mask;
          found := !best
        end
        else begin
          t.cur <- (t.cur + 1) land mask;
          t.day <- t.day + 1
        end
      end
    done;
    t.peeked <- !found;
    !found

  let[@inline] peek_slot t = if t.peeked >= 0 then t.peeked else find_min t

  let next_time_exn t =
    if t.size = 0 then invalid_arg "Event_queue.next_time_exn: empty queue";
    Sim_time.of_float t.etime.(peek_slot t)

  (* engine fast path: raw timestamp, no emptiness check, no boxing
     once inlined — callers guard with [is_empty] *)
  let[@inline] next_time_unsafe t = Array.unsafe_get t.etime (peek_slot t)

  let pop_exn (type a) (t : a t) : a =
    if t.size = 0 then invalid_arg "Event_queue.pop_exn: empty queue";
    let slot = peek_slot t in
    t.peeked <- -1;
    (* the cursor sits on the slot's bucket after the peek *)
    let nx = Array.unsafe_get t.enext slot in
    Array.unsafe_set t.heads t.cur nx;
    if nx = -1 then Array.unsafe_set t.tails t.cur (-1);
    t.size <- t.size - 1;
    let ps = t.payloads in
    let payload = Array.unsafe_get ps slot in
    store_dummy ps slot;
    Array.unsafe_set t.enext slot t.free_head;
    t.free_head <- slot;
    (Obj.obj payload : a)

  let pop t =
    if t.size = 0 then None
    else
      let at = Sim_time.of_float t.etime.(peek_slot t) in
      Some (at, pop_exn t)

  let peek_time t =
    if t.size = 0 then None
    else Some (Sim_time.of_float t.etime.(peek_slot t))

  let size t = t.size
  let[@inline] is_empty t = t.size = 0

  let clear t =
    (* release every live payload and return its slot to the free
       list; bucket lists reset wholesale *)
    for b = 0 to t.nbuckets - 1 do
      let s = ref t.heads.(b) in
      while !s <> -1 do
        let nx = t.enext.(!s) in
        store_dummy t.payloads !s;
        t.enext.(!s) <- t.free_head;
        t.free_head <- !s;
        s := nx
      done;
      t.heads.(b) <- -1;
      t.tails.(b) <- -1
    done;
    t.size <- 0;
    t.peeked <- -1

  let scheduled_total t = t.next_seq

  let retained_payloads t =
    let n = ref 0 in
    Array.iter (fun p -> if p != dummy then incr n) t.payloads;
    !n

  let capacity t = Array.length t.etime
end

(* ------------------------------------------------------------------ *)
(* Heap: the seed implementation — persistent pairing heap of keys     *)
(* plus a payload side table — kept verbatim as the reference for      *)
(* differential testing against [Indexed].                             *)
(* ------------------------------------------------------------------ *)

module Heap = struct
  module Key = struct
    type t = { time : Sim_time.t; seq : int }

    let compare a b =
      let c = Sim_time.compare a.time b.time in
      if c <> 0 then c else Int.compare a.seq b.seq
  end

  (* The heap stores keys only; payloads live in a side table so the
     heap element type stays comparison-friendly. *)
  module H = Pairing_heap.Make (Key)

  type 'a t = {
    mutable heap : H.t;
    payloads : (int, 'a) Hashtbl.t;
    mutable next_seq : int;
  }

  let create () =
    { heap = H.empty; payloads = Hashtbl.create 256; next_seq = 0 }

  let schedule t ~at payload =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace t.payloads seq payload;
    t.heap <- H.insert { Key.time = at; seq } t.heap

  let pop t =
    match H.delete_min t.heap with
    | None -> None
    | Some (key, rest) ->
        t.heap <- rest;
        let payload = Hashtbl.find t.payloads key.Key.seq in
        Hashtbl.remove t.payloads key.Key.seq;
        Some (key.Key.time, payload)

  let next_time_exn t =
    match H.find_min t.heap with
    | Some k -> k.Key.time
    | None -> invalid_arg "Event_queue.next_time_exn: empty queue"

  let pop_exn t =
    match pop t with
    | Some (_, payload) -> payload
    | None -> invalid_arg "Event_queue.pop_exn: empty queue"

  let peek_time t = Option.map (fun k -> k.Key.time) (H.find_min t.heap)
  let size t = H.size t.heap
  let is_empty t = H.is_empty t.heap

  let clear t =
    t.heap <- H.empty;
    Hashtbl.reset t.payloads

  let scheduled_total t = t.next_seq
  let retained_payloads t = Hashtbl.length t.payloads
  let capacity t = (Hashtbl.stats t.payloads).Hashtbl.num_buckets
end

include Indexed
