(** Timed event queue.

    A mutable priority queue of [(time, payload)] pairs. Events with
    equal timestamps fire in scheduling order (a monotonically
    increasing sequence number breaks ties), so a run of the simulator
    is fully deterministic.

    Two interchangeable implementations sit behind the {!S} seam,
    mirroring the [Delivery_buffer] seam of PR 1:

    - {!Indexed} (the default, included at top level): a flat
      int-indexed calendar queue (Brown 1988) over parallel growable
      arrays — unboxed [float] timestamps, [int] sequence numbers,
      payloads stored inline in a slot arena and dropped eagerly on
      [pop]/[clear]. Pending events hang off time-bucketed intrusive
      lists; schedule and pop are O(1) amortized (tail appends for
      in-order arrivals, a day-by-day cursor walk for pops, widths
      re-derived deterministically as the queue grows). Steady-state
      operation allocates nothing: slots are recycled in place and the
      arrays only grow when the high-water mark of simultaneously
      pending events grows.
    - {!Heap}: the seed implementation — a persistent pairing heap of
      keys plus a payload side table — kept as the reference for
      differential testing. Any divergence in drain order between the
      two is a bug in the flat heap.

    Both implementations drain any schedule in identical
    [(time, seq)] order; [test_event_queue] pins this property over
    random interleavings of pushes, pops and clears. *)

module type S = sig
  type 'a t

  val create : unit -> 'a t
  val schedule : 'a t -> at:Sim_time.t -> 'a -> unit

  val pop : 'a t -> (Sim_time.t * 'a) option
  (** Earliest event, removed; [None] on empty queue. Allocates the
      option and pair — the engine hot path uses {!next_time_exn} +
      {!pop_exn} instead. *)

  val next_time_exn : 'a t -> Sim_time.t
  (** Timestamp of the earliest event, not removed. Does not allocate.
      @raise Invalid_argument on an empty queue. *)

  val pop_exn : 'a t -> 'a
  (** Earliest event's payload, removed. Does not allocate (beyond what
      the implementation may shuffle internally — nothing, for
      {!Indexed}). @raise Invalid_argument on an empty queue. *)

  val peek_time : 'a t -> Sim_time.t option
  val size : 'a t -> int
  val is_empty : 'a t -> bool

  val clear : 'a t -> unit
  (** Empties the queue and releases every retained payload (the
      sequence counter survives, see {!scheduled_total}). *)

  val scheduled_total : 'a t -> int
  (** Total number of events ever scheduled (monotone counter, survives
      [clear]); useful for engine statistics. *)

  val retained_payloads : 'a t -> int
  (** Number of payloads the queue currently keeps alive. The
      steady-state-retention regression test pins this to be exactly
      the number of pending events: popped or cleared slots must not
      pin their payloads for the GC. *)

  val capacity : 'a t -> int
  (** Physical slots currently allocated (high-water mark of pending
      events, for {!Indexed}); observability for retention tests. *)
end

module Indexed : sig
  include S

  val next_time_unsafe : 'a t -> float
  (** Raw timestamp of the earliest event — the engine drain loop's
      fast path: no emptiness check (callers guard with {!is_empty})
      and, once inlined, no float boxing. Unspecified on an empty
      queue; never raises. *)
end
(** Flat int-indexed calendar queue: unboxed [(time, seq)] keys point
    into a free-listed payload arena, so inserts and pops move only
    floats and ints and cross the GC write barrier exactly once per
    event (the payload store). *)

module Heap : S
(** The seed pairing-heap + payload side-table implementation, kept as
    the differential-testing reference. *)

include S with type 'a t = 'a Indexed.t
