type event =
  | Crash of { proc : int; at : Sim_time.t }
  | Recover of { proc : int; at : Sim_time.t }
  | Cut of { groups : int list list; at : Sim_time.t }
  | Heal of { at : Sim_time.t }
  | Join of { proc : int; at : Sim_time.t }
  | Leave of { proc : int; at : Sim_time.t }
  | Cut_oneway of { src : int; dst : int; at : Sim_time.t }
  | Heal_oneway of { src : int; dst : int; at : Sim_time.t }
  | Flap of { a : int; b : int; period : float; until_ : float; at : Sim_time.t }
  | Inflate of {
      src : int;
      dst : int;
      factor : float;
      until_ : float;
      at : Sim_time.t;
    }

type t = event list

let time = function
  | Crash { at; _ } | Recover { at; _ } | Cut { at; _ } | Heal { at }
  | Join { at; _ } | Leave { at; _ }
  | Cut_oneway { at; _ } | Heal_oneway { at; _ }
  | Flap { at; _ } | Inflate { at; _ } -> at

let compare_events a b = Sim_time.compare (time a) (time b)

let make events = List.stable_sort compare_events events

(* Per-slot membership state machine used by [validate]:
   - [`Up]: a live member — may crash or leave;
   - [`Down]: a crashed member — may [Recover] (same incarnation, PR 2)
     or [Join] (crash-rejoin under a fresh incarnation);
   - [`Out]: not in the view (never joined, or left) — may [Join]. *)
let validate ~n ?initial t =
  let fail fmt = Printf.ksprintf invalid_arg ("Fault_plan: " ^^ fmt) in
  let check_proc p =
    if p < 0 || p >= n then fail "process %d out of range [0,%d)" p n
  in
  let state = Array.make n `Out in
  (match initial with
  | None -> Array.fill state 0 n `Up
  | Some members ->
      List.iter
        (fun p ->
          check_proc p;
          state.(p) <- `Up)
        members);
  let last = ref Sim_time.zero in
  List.iter
    (fun ev ->
      let at = time ev in
      if Sim_time.(at < !last) then
        fail "events not sorted (use Fault_plan.make)";
      last := at;
      match ev with
      | Crash { proc; _ } -> (
          check_proc proc;
          match state.(proc) with
          | `Up -> state.(proc) <- `Down
          | `Down -> fail "process %d crashed while down" proc
          | `Out -> fail "process %d crashed while not a member" proc)
      | Recover { proc; _ } -> (
          check_proc proc;
          match state.(proc) with
          | `Down -> state.(proc) <- `Up
          | `Up | `Out -> fail "process %d recovered while up" proc)
      | Join { proc; _ } -> (
          check_proc proc;
          match state.(proc) with
          | `Out | `Down ->
              (* [`Down] is a crash-rejoin: fresh incarnation *)
              state.(proc) <- `Up
          | `Up -> fail "process %d joined while already a live member" proc)
      | Leave { proc; _ } -> (
          check_proc proc;
          match state.(proc) with
          | `Up -> state.(proc) <- `Out
          | `Down | `Out ->
              fail "process %d left while not a live member" proc)
      | Cut { groups; _ } ->
          List.iter (List.iter check_proc) groups;
          let seen = Hashtbl.create 16 in
          List.iter
            (List.iter (fun p ->
                 if Hashtbl.mem seen p then
                   fail "process %d in two partition groups" p;
                 Hashtbl.add seen p ()))
            groups
      | Heal _ -> ()
      | Cut_oneway { src; dst; _ } | Heal_oneway { src; dst; _ } ->
          check_proc src;
          check_proc dst;
          if src = dst then fail "one-way cut of a self-link (p%d)" src
      | Flap { a; b; period; until_; _ } ->
          check_proc a;
          check_proc b;
          if a = b then fail "flap of a self-link (p%d)" a;
          if not (period > 0. && Float.is_finite period) then
            fail "flap period must be positive and finite";
          if not (until_ > Sim_time.to_float at) then
            fail "flap must end after it starts"
      | Inflate { src; dst; factor; until_; _ } ->
          check_proc src;
          check_proc dst;
          if src = dst then fail "delay inflation of a self-link (p%d)" src;
          if not (factor >= 1. && Float.is_finite factor) then
            fail "inflation factor must be >= 1 and finite";
          if not (until_ > Sim_time.to_float at) then
            fail "inflation must end after it starts")
    t

let down_at_end t =
  let down = Hashtbl.create 8 in
  List.iter
    (function
      | Crash { proc; _ } -> Hashtbl.replace down proc ()
      | Recover { proc; _ } | Join { proc; _ } -> Hashtbl.remove down proc
      | Leave _ | Cut _ | Heal _ | Cut_oneway _ | Heal_oneway _ | Flap _
      | Inflate _ -> ())
    t;
  List.sort compare (Hashtbl.fold (fun p () acc -> p :: acc) down [])

let has_churn t =
  List.exists (function Join _ | Leave _ -> true | _ -> false) t

let has_link_faults t =
  List.exists
    (function
      | Cut_oneway _ | Heal_oneway _ | Flap _ | Inflate _ -> true
      | _ -> false)
    t

let install t ~engine ?on_join ?on_leave ?on_cut_oneway ?on_heal_oneway
    ?on_flap ?on_inflate ~on_crash ~on_recover ~on_cut ~on_heal () =
  let missing name hint =
    invalid_arg
      (Printf.sprintf
         "Fault_plan.install: plan contains %s events but no %s hook was \
          given (use %s)"
         name name hint)
  in
  let on_join =
    Option.value on_join
      ~default:(fun _ -> missing "Join" "a churn-aware driver")
  in
  let on_leave =
    Option.value on_leave
      ~default:(fun _ -> missing "Leave" "a churn-aware driver")
  in
  let on_cut_oneway =
    Option.value on_cut_oneway ~default:(fun ~src:_ ~dst:_ ->
        missing "Cut_oneway" "a link-fault-aware driver, e.g. Nemesis")
  in
  let on_heal_oneway =
    Option.value on_heal_oneway ~default:(fun ~src:_ ~dst:_ ->
        missing "Heal_oneway" "a link-fault-aware driver, e.g. Nemesis")
  in
  let on_flap =
    Option.value on_flap ~default:(fun ~a:_ ~b:_ ~period:_ ~until_:_ ->
        missing "Flap" "a link-fault-aware driver, e.g. Nemesis")
  in
  let on_inflate =
    Option.value on_inflate ~default:(fun ~src:_ ~dst:_ ~factor:_ ~until_:_ ->
        missing "Inflate" "a link-fault-aware driver, e.g. Nemesis")
  in
  List.iter
    (fun ev ->
      Engine.schedule_at engine (time ev) (fun () ->
          match ev with
          | Crash { proc; _ } -> on_crash proc
          | Recover { proc; _ } -> on_recover proc
          | Join { proc; _ } -> on_join proc
          | Leave { proc; _ } -> on_leave proc
          | Cut { groups; _ } -> on_cut groups
          | Heal _ -> on_heal ()
          | Cut_oneway { src; dst; _ } -> on_cut_oneway ~src ~dst
          | Heal_oneway { src; dst; _ } -> on_heal_oneway ~src ~dst
          | Flap { a; b; period; until_; _ } -> on_flap ~a ~b ~period ~until_
          | Inflate { src; dst; factor; until_; _ } ->
              on_inflate ~src ~dst ~factor ~until_))
    t

let random rng ~n ~horizon ?(crashes = 1) ?(partitions = 1) () =
  if n < 2 then invalid_arg "Fault_plan.random: need at least 2 processes";
  if horizon <= 0. then invalid_arg "Fault_plan.random: horizon <= 0";
  if crashes < 0 || crashes >= n then
    invalid_arg "Fault_plan.random: crashes must be in [0,n)";
  if partitions < 0 then
    invalid_arg "Fault_plan.random: partitions must be >= 0";
  let rng = Rng.split rng in
  (* distinct victims: shuffle identities, take a prefix *)
  let procs = Array.init n Fun.id in
  Rng.shuffle rng procs;
  let crash_events =
    List.concat
      (List.init crashes (fun i ->
           let proc = procs.(i) in
           let at = Rng.uniform rng (0.1 *. horizon) (0.5 *. horizon) in
           let down = Rng.uniform rng (0.1 *. horizon) (0.4 *. horizon) in
           [
             Crash { proc; at = Sim_time.of_float at };
             Recover { proc; at = Sim_time.of_float (at +. down) };
           ]))
  in
  (* sequential (non-overlapping) partition episodes, so a Heal never
     tears down a concurrent episode's cuts *)
  let partition_events =
    let cursor = ref (Rng.uniform rng 0. (0.2 *. horizon)) in
    List.concat
      (List.init partitions (fun _ ->
           let start = !cursor in
           let dur =
             Rng.uniform rng (0.05 *. horizon) (0.35 *. horizon)
           in
           cursor := start +. dur +. Rng.uniform rng 1. (0.1 *. horizon);
           (* random two-sided split with both sides non-empty *)
           let side = Array.init n (fun _ -> Rng.bool rng) in
           let some_true = Array.exists Fun.id side
           and some_false = Array.exists not side in
           if not some_true then side.(Rng.int rng n) <- true
           else if not some_false then side.(Rng.int rng n) <- false;
           let left = ref [] and right = ref [] in
           for p = n - 1 downto 0 do
             if side.(p) then left := p :: !left else right := p :: !right
           done;
           [
             Cut
               {
                 groups = [ !left; !right ];
                 at = Sim_time.of_float start;
               };
             Heal { at = Sim_time.of_float (start +. dur) };
           ]))
  in
  let plan = make (crash_events @ partition_events) in
  validate ~n plan;
  plan

let random_churn rng ~initial ~n ~horizon ?(joins = 1) ?(leaves = 1)
    ?(rejoins = 0) () =
  if initial < 2 then
    invalid_arg "Fault_plan.random_churn: need at least 2 initial members";
  if horizon <= 0. then invalid_arg "Fault_plan.random_churn: horizon <= 0";
  if joins < 0 || leaves < 0 || rejoins < 0 then
    invalid_arg "Fault_plan.random_churn: negative event count";
  if initial + joins > n then
    invalid_arg
      "Fault_plan.random_churn: universe too small for the joins (need \
       initial + joins <= n)";
  if leaves + rejoins > initial - 1 then
    invalid_arg
      "Fault_plan.random_churn: leaves + rejoins must keep at least one \
       stable initial member";
  let rng = Rng.split rng in
  (* fresh joiners take the slots beyond the initial prefix *)
  let join_events =
    List.init joins (fun i ->
        let at = Rng.uniform rng (0.1 *. horizon) (0.45 *. horizon) in
        Join { proc = initial + i; at = Sim_time.of_float at })
  in
  (* distinct victims among the initial members: shuffle, slice *)
  let procs = Array.init initial Fun.id in
  Rng.shuffle rng procs;
  let rejoin_events =
    List.concat
      (List.init rejoins (fun i ->
           let proc = procs.(i) in
           let at = Rng.uniform rng (0.2 *. horizon) (0.4 *. horizon) in
           let down = Rng.uniform rng (0.1 *. horizon) (0.25 *. horizon) in
           [
             Crash { proc; at = Sim_time.of_float at };
             (* Join of a downed member = crash-rejoin, fresh incarnation *)
             Join { proc; at = Sim_time.of_float (at +. down) };
           ]))
  in
  let leave_events =
    List.init leaves (fun i ->
        let proc = procs.(rejoins + i) in
        let at = Rng.uniform rng (0.55 *. horizon) (0.85 *. horizon) in
        Leave { proc; at = Sim_time.of_float at })
  in
  let plan = make (join_events @ rejoin_events @ leave_events) in
  validate ~n ~initial:(List.init initial Fun.id) plan;
  plan

let random_links rng ~n ~horizon ?(oneways = 1) ?(flaps = 1)
    ?(inflations = 1) () =
  if n < 2 then
    invalid_arg "Fault_plan.random_links: need at least 2 processes";
  if horizon <= 0. then invalid_arg "Fault_plan.random_links: horizon <= 0";
  if oneways < 0 || flaps < 0 || inflations < 0 then
    invalid_arg "Fault_plan.random_links: negative episode count";
  let rng = Rng.split rng in
  let pair () =
    let src = Rng.int rng n in
    let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
    (src, dst)
  in
  let oneway_events =
    List.concat
      (List.init oneways (fun _ ->
           let src, dst = pair () in
           let at = Rng.uniform rng (0.1 *. horizon) (0.5 *. horizon) in
           let dur = Rng.uniform rng (0.05 *. horizon) (0.3 *. horizon) in
           [
             Cut_oneway { src; dst; at = Sim_time.of_float at };
             Heal_oneway { src; dst; at = Sim_time.of_float (at +. dur) };
           ]))
  in
  let flap_events =
    List.init flaps (fun _ ->
        let a, b = pair () in
        let at = Rng.uniform rng (0.1 *. horizon) (0.5 *. horizon) in
        let period = Rng.uniform rng (0.01 *. horizon) (0.05 *. horizon) in
        let dur = Rng.uniform rng (0.1 *. horizon) (0.3 *. horizon) in
        Flap { a; b; period; until_ = at +. dur; at = Sim_time.of_float at })
  in
  let inflate_events =
    List.init inflations (fun _ ->
        let src, dst = pair () in
        let at = Rng.uniform rng (0.1 *. horizon) (0.5 *. horizon) in
        let factor = Rng.uniform rng 2. 8. in
        let dur = Rng.uniform rng (0.1 *. horizon) (0.4 *. horizon) in
        Inflate
          { src; dst; factor; until_ = at +. dur; at = Sim_time.of_float at })
  in
  let plan = make (oneway_events @ flap_events @ inflate_events) in
  validate ~n plan;
  plan

let pp_event ppf = function
  | Crash { proc; at } ->
      Format.fprintf ppf "crash p%d @@%a" (proc + 1) Sim_time.pp at
  | Recover { proc; at } ->
      Format.fprintf ppf "recover p%d @@%a" (proc + 1) Sim_time.pp at
  | Join { proc; at } ->
      Format.fprintf ppf "join p%d @@%a" (proc + 1) Sim_time.pp at
  | Leave { proc; at } ->
      Format.fprintf ppf "leave p%d @@%a" (proc + 1) Sim_time.pp at
  | Cut { groups; at } ->
      Format.fprintf ppf "cut {%a} @@%a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
           (fun ppf g ->
             Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
               (fun ppf p -> Format.fprintf ppf "p%d" (p + 1))
               ppf g))
        groups Sim_time.pp at
  | Heal { at } -> Format.fprintf ppf "heal @@%a" Sim_time.pp at
  | Cut_oneway { src; dst; at } ->
      Format.fprintf ppf "cut-oneway p%d>p%d @@%a" (src + 1) (dst + 1)
        Sim_time.pp at
  | Heal_oneway { src; dst; at } ->
      Format.fprintf ppf "heal-oneway p%d>p%d @@%a" (src + 1) (dst + 1)
        Sim_time.pp at
  | Flap { a; b; period; until_; at } ->
      Format.fprintf ppf "flap p%d~p%d period=%g until=%g @@%a" (a + 1)
        (b + 1) period until_ Sim_time.pp at
  | Inflate { src; dst; factor; until_; at } ->
      Format.fprintf ppf "inflate p%d>p%d x%g until=%g @@%a" (src + 1)
        (dst + 1) factor until_ Sim_time.pp at

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
    pp_event ppf t
