(** Scriptable and randomized fault injection schedules.

    A plan is a time-sorted list of {!event}s: crash-stop a process,
    restart it, cut the network into groups, heal every cut. The plan
    itself is pure data — {!install} schedules it on an {!Engine} and
    dispatches to caller-supplied hooks, so the same plan can drive any
    harness (the fault-campaign driver wires the hooks to
    {!Network.mark_crashed}, {!Reliable_channel.abort_peer}, snapshot
    restore and anti-entropy).

    The paper's §3.1 model has no failures at all; plans are how the
    repo steps outside that model while the checker keeps auditing the
    resulting histories for causal consistency. *)

type event =
  | Crash of { proc : int; at : Sim_time.t }
      (** crash-stop: volatile state is lost at [at] *)
  | Recover of { proc : int; at : Sim_time.t }
      (** restart from the last durable snapshot *)
  | Cut of { groups : int list list; at : Sim_time.t }
      (** partition: links between distinct groups drop silently *)
  | Heal of { at : Sim_time.t }  (** heal every cut link *)
  | Join of { proc : int; at : Sim_time.t }
      (** membership: the slot enters the view — a fresh process, or a
          crash-rejoin under a new incarnation when the slot is down *)
  | Leave of { proc : int; at : Sim_time.t }
      (** membership: graceful departure — flush pending writes, then
          leave the view *)
  | Cut_oneway of { src : int; dst : int; at : Sim_time.t }
      (** asymmetric partition: the [src -> dst] direction alone is
          unplugged ({!Network.cut_oneway}) *)
  | Heal_oneway of { src : int; dst : int; at : Sim_time.t }
  | Flap of {
      a : int;
      b : int;
      period : float;
      until_ : float;
      at : Sim_time.t;
    }
      (** link flapping: from [at], the pair's link oscillates
          cut/healed every [period] time units until [until_]
          ({!Network.flap}) *)
  | Inflate of {
      src : int;
      dst : int;
      factor : float;
      until_ : float;
      at : Sim_time.t;
    }
      (** tail-latency spike: delays on [src -> dst] are multiplied by
          [factor] from [at] until [until_] ({!Network.inflate}) *)

type t = event list
(** Sorted by time; build with {!make}. *)

val time : event -> Sim_time.t

val make : event list -> t
(** Sorts by time (stable, so same-time events keep list order). *)

val validate : n:int -> ?initial:int list -> t -> unit
(** Checks the plan is well-formed for a universe of [n] slots: ids in
    range, non-negative sorted times, and the per-slot membership state
    machine respected — crash/leave need a live member, recover needs a
    crashed member, join needs a non-member or a crashed member (the
    latter is a crash-rejoin). Link-fault events must name distinct
    endpoints, flap periods must be positive, inflation factors [>= 1],
    and both episode kinds must end after they start. [?initial] is the
    slot set that is a live member at time 0 (default: all [n]).
    @raise Invalid_argument otherwise. *)

val down_at_end : t -> int list
(** Processes left crashed when the plan runs out, sorted (a
    crash-rejoin [Join] clears the crash). *)

val has_churn : t -> bool
(** True when the plan contains [Join] or [Leave] events. *)

val has_link_faults : t -> bool
(** True when the plan contains [Cut_oneway], [Heal_oneway], [Flap] or
    [Inflate] events. *)

val install :
  t ->
  engine:Engine.t ->
  ?on_join:(int -> unit) ->
  ?on_leave:(int -> unit) ->
  ?on_cut_oneway:(src:int -> dst:int -> unit) ->
  ?on_heal_oneway:(src:int -> dst:int -> unit) ->
  ?on_flap:(a:int -> b:int -> period:float -> until_:float -> unit) ->
  ?on_inflate:(src:int -> dst:int -> factor:float -> until_:float -> unit) ->
  on_crash:(int -> unit) ->
  on_recover:(int -> unit) ->
  on_cut:(int list list -> unit) ->
  on_heal:(unit -> unit) ->
  unit ->
  unit
(** Schedules every event on the engine at its time. Call before
    [Engine.run] (events must not be in the engine's past). The churn
    and link-fault hooks default to raising [Invalid_argument] when the
    plan actually contains such events — drivers that predate
    membership or link faults stay honest. *)

val random :
  Rng.t ->
  n:int ->
  horizon:float ->
  ?crashes:int ->
  ?partitions:int ->
  unit ->
  t
(** A randomized, valid plan drawn from a split of [rng]: [crashes]
    (default 1) distinct processes each crash once in
    [0.1–0.5]·horizon and recover after a [0.1–0.4]·horizon downtime;
    [partitions] (default 1) two-sided cuts run sequentially (episodes
    never overlap, so each heal tears down exactly its own cut).
    @raise Invalid_argument if [n < 2], [horizon <= 0],
    [crashes ∉ [0,n)] or [partitions < 0]. *)

val random_churn :
  Rng.t ->
  initial:int ->
  n:int ->
  horizon:float ->
  ?joins:int ->
  ?leaves:int ->
  ?rejoins:int ->
  unit ->
  t
(** A randomized, valid churn schedule drawn from a split of [rng] over
    a universe of [n] slots of which [initial] (slots [0..initial-1])
    are members at time 0: [joins] (default 1) fresh processes take the
    next slots and join in [0.1–0.45]·horizon; [rejoins] (default 0)
    distinct initial members crash in [0.2–0.4]·horizon and rejoin
    under a fresh incarnation after a [0.1–0.25]·horizon downtime;
    [leaves] (default 1) further distinct initial members depart
    gracefully in [0.55–0.85]·horizon. At least one initial member
    stays up throughout.
    @raise Invalid_argument if [initial < 2], [horizon <= 0], a count
    is negative, [initial + joins > n], or
    [leaves + rejoins > initial - 1]. *)

val random_links :
  Rng.t ->
  n:int ->
  horizon:float ->
  ?oneways:int ->
  ?flaps:int ->
  ?inflations:int ->
  unit ->
  t
(** A randomized, valid link-fault schedule drawn from a split of
    [rng]: [oneways] (default 1) one-way cut episodes (cut in
    [0.1–0.5]·horizon, healed after [0.05–0.3]·horizon), [flaps]
    (default 1) flap episodes (period [0.01–0.05]·horizon, duration
    [0.1–0.3]·horizon) and [inflations] (default 1) delay spikes
    (factor 2–8×, duration [0.1–0.4]·horizon), each on an independently
    drawn directed pair. Compose with {!random} / {!random_churn}
    output via {!make} ([List.append] then re-sort).
    @raise Invalid_argument if [n < 2], [horizon <= 0] or a count is
    negative. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
