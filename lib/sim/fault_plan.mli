(** Scriptable and randomized fault injection schedules.

    A plan is a time-sorted list of {!event}s: crash-stop a process,
    restart it, cut the network into groups, heal every cut. The plan
    itself is pure data — {!install} schedules it on an {!Engine} and
    dispatches to caller-supplied hooks, so the same plan can drive any
    harness (the fault-campaign driver wires the hooks to
    {!Network.mark_crashed}, {!Reliable_channel.abort_peer}, snapshot
    restore and anti-entropy).

    The paper's §3.1 model has no failures at all; plans are how the
    repo steps outside that model while the checker keeps auditing the
    resulting histories for causal consistency. *)

type event =
  | Crash of { proc : int; at : Sim_time.t }
      (** crash-stop: volatile state is lost at [at] *)
  | Recover of { proc : int; at : Sim_time.t }
      (** restart from the last durable snapshot *)
  | Cut of { groups : int list list; at : Sim_time.t }
      (** partition: links between distinct groups drop silently *)
  | Heal of { at : Sim_time.t }  (** heal every cut link *)

type t = event list
(** Sorted by time; build with {!make}. *)

val time : event -> Sim_time.t

val make : event list -> t
(** Sorts by time (stable, so same-time events keep list order). *)

val validate : n:int -> t -> unit
(** Checks the plan is well-formed for [n] processes: ids in range,
    non-negative sorted times, no crash of a crashed process, no
    recovery of a live one, no process in two groups of one cut.
    @raise Invalid_argument otherwise. *)

val down_at_end : t -> int list
(** Processes left crashed when the plan runs out, sorted. *)

val install :
  t ->
  engine:Engine.t ->
  on_crash:(int -> unit) ->
  on_recover:(int -> unit) ->
  on_cut:(int list list -> unit) ->
  on_heal:(unit -> unit) ->
  unit
(** Schedules every event on the engine at its time. Call before
    [Engine.run] (events must not be in the engine's past). *)

val random :
  Rng.t ->
  n:int ->
  horizon:float ->
  ?crashes:int ->
  ?partitions:int ->
  unit ->
  t
(** A randomized, valid plan drawn from a split of [rng]: [crashes]
    (default 1) distinct processes each crash once in
    [0.1–0.5]·horizon and recover after a [0.1–0.4]·horizon downtime;
    [partitions] (default 1) two-sided cuts run sequentially (episodes
    never overlap, so each heal tears down exactly its own cut).
    @raise Invalid_argument if [n < 2], [horizon <= 0],
    [crashes ∉ [0,n)] or [partitions < 0]. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
