type 'a t = {
  mutable items : (int * 'a) list;  (* newest first; ids ascending *)
  mutable len : int;  (* List.length items, tracked explicitly *)
  mutable next_id : int;
  mutable high : int;
  mutable total : int;
  mutable scans : int;  (* predicate evaluations in take_first *)
}

let create () =
  { items = []; len = 0; next_id = 0; high = 0; total = 0; scans = 0 }

let add t x =
  t.items <- (t.next_id, x) :: t.items;
  t.next_id <- t.next_id + 1;
  t.total <- t.total + 1;
  t.len <- t.len + 1;
  if t.len > t.high then t.high <- t.len

let length t = t.len
let is_empty t = t.items = []
let to_list t = List.rev_map snd t.items

let take_first t ~f =
  (* oldest = last of the newest-first list *)
  let oldest_first = List.rev t.items in
  let rec split acc = function
    | [] -> None
    | ((_, x) as item) :: rest ->
        t.scans <- t.scans + 1;
        if f x then begin
          t.items <- List.rev_append acc rest |> List.rev;
          t.len <- t.len - 1;
          (* [t.items] must stay newest-first: [acc] holds the skipped
             older items newest-last, [rest] the younger ones oldest-
             first; rebuild as newest-first. *)
          Some x
        end
        else split (item :: acc) rest
  in
  split [] oldest_first

let remove_all t ~f =
  let kept, removed = List.partition (fun (_, x) -> not (f x)) t.items in
  t.items <- kept;
  t.len <- t.len - List.length removed;
  List.rev_map snd removed

let drain_fixpoint t ~f =
  let rec go acc =
    match take_first t ~f with
    | None -> List.rev acc
    | Some x -> go (x :: acc)
  in
  go []

let high_watermark t = t.high
let total_buffered t = t.total
let scans t = t.scans

let clear t =
  t.items <- [];
  t.len <- 0
