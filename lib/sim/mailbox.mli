(** Deterministic pending-message buffer.

    Every protocol in the class [𝒫] buffers write messages that arrive
    "too early" (their enabling events have not occurred yet) and
    re-examines the buffer after each apply. This module centralizes
    that buffering so all protocol implementations share the same,
    deterministic retry discipline: messages are examined oldest-first,
    and a successful apply triggers a rescan from the start (because an
    apply can enable any buffered message, not just later ones).

    The buffer also exposes occupancy statistics, which experiment Q4
    reports. *)

type 'a t

val create : unit -> 'a t
val add : 'a t -> 'a -> unit
val length : 'a t -> int
val is_empty : 'a t -> bool

val to_list : 'a t -> 'a list
(** Oldest first. *)

val take_first : 'a t -> f:('a -> bool) -> 'a option
(** Removes and returns the oldest buffered element satisfying [f]. *)

val remove_all : 'a t -> f:('a -> bool) -> 'a list
(** Removes every element satisfying [f]; returns them oldest-first
    (used by writing-semantics protocols to discard overwritten
    messages). *)

val drain_fixpoint : 'a t -> f:('a -> bool) -> 'a list
(** Repeatedly applies {!take_first} until no buffered element
    satisfies [f], returning the taken elements in removal order. Note
    [f] is typically effectful (it applies the write when it fires), so
    each success may enable further elements; hence the fixpoint. *)

val high_watermark : 'a t -> int
(** Largest occupancy ever observed. *)

val total_buffered : 'a t -> int
(** Total number of elements ever added (monotone counter). *)

val scans : 'a t -> int
(** Predicate evaluations performed by {!take_first} so far — the cost
    of the rescan discipline, surfaced as the "wakeup scans" metric. *)

val clear : 'a t -> unit
