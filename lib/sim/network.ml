type 'a handler = src:int -> at:Sim_time.t -> 'a -> unit

type faults = { drop : float; duplicate : float; corrupt : float }

let no_faults = { drop = 0.; duplicate = 0.; corrupt = 0. }

exception No_handler of { dst : int; src : int; at : Sim_time.t }

let () =
  Printexc.register_printer (function
    | No_handler { dst; src; at } ->
        Some
          (Printf.sprintf
             "Network.No_handler: delivery to process %d (from %d, at \
              t=%g) but no handler is installed"
             dst src (Sim_time.to_float at))
    | _ -> None)

module Metrics = Dsm_obs.Metrics
module Wire = Dsm_obs.Wire

(* pre-resolved instrument handles; [p_live] gates the one measurement
   whose computation itself costs something (payload sizing) *)
type probes = {
  p_live : bool;
  p_sends : Metrics.counter;
  p_delivered : Metrics.counter;
  p_drop_random : Metrics.counter;
  p_drop_partition : Metrics.counter;
  p_drop_crash : Metrics.counter;
  p_drop_stale : Metrics.counter;
  p_drop_nonmember : Metrics.counter;
  p_drop_oneway : Metrics.counter;
  p_drop_flap : Metrics.counter;
  p_delay_inflated : Metrics.counter;
  p_duplicated : Metrics.counter;
  p_corrupted : Metrics.counter;
  p_partition_cuts : Metrics.counter;
  p_payload_bytes : Metrics.counter;
  p_delivery_delay : Metrics.quantile;
}

let probes metrics =
  let c ?labels name = Metrics.counter metrics ?labels name in
  {
    p_live = Metrics.enabled metrics;
    p_sends = c "net_sends";
    p_delivered = c "net_delivered";
    p_drop_random = c "net_dropped" ~labels:[ ("cause", "random") ];
    p_drop_partition = c "net_dropped" ~labels:[ ("cause", "partition") ];
    p_drop_crash = c "net_dropped" ~labels:[ ("cause", "crash") ];
    p_drop_stale = c "net_dropped" ~labels:[ ("cause", "stale") ];
    p_drop_nonmember = c "net_dropped" ~labels:[ ("cause", "nonmember") ];
    p_drop_oneway = c "net_dropped" ~labels:[ ("cause", "oneway") ];
    p_drop_flap = c "net_dropped" ~labels:[ ("cause", "flap") ];
    p_delay_inflated = c "net_delayed" ~labels:[ ("cause", "inflation") ];
    p_duplicated = c "net_duplicated";
    p_corrupted = c "net_corrupted";
    p_partition_cuts = c "net_partition_cuts";
    p_payload_bytes = c "net_payload_bytes";
    p_delivery_delay = Metrics.quantile metrics "net_delivery_delay";
  }

(* ---- envelope arena ------------------------------------------------ *)

(* An in-flight message is a slot in a flat arena instead of a fresh
   closure: the slot's [s_fire] thunk is allocated once (capturing the
   network and the slot index) and reused for every message that passes
   through the slot, so steady-state traffic allocates nothing per
   envelope. Slots are recycled through a free-list stack; a slot is
   released — payload dummied so the GC cannot see it — before its
   handler runs, so a send from inside the handler may reuse it
   immediately. [s_dummy] is an immediate, keeping every payload write
   representation-safe. *)
type slot = {
  mutable s_time : float;  (* delivery timestamp *)
  mutable s_seq : int;  (* global send order, ties on the batch heap *)
  mutable s_src : int;
  mutable s_dst : int;
  mutable s_dst_inc : int;  (* destination incarnation stamped at send *)
  mutable s_dst_gen : int;  (* destination slot generation stamped at send *)
  mutable s_payload : Obj.t;
  mutable s_fire : unit -> unit;
}

let s_dummy = Obj.repr ()

(* Per-(src,dst) delivery batch: pending slot ids ordered by
   (s_time, s_seq) in an implicit binary heap, plus the single armed
   wakeup. [e_wake] is allocated once per edge; [e_wake_time] is the
   timestamp of the earliest armed wakeup ([infinity] when none), which
   lets stale wakeups — superseded by an earlier re-arm — recognise
   themselves and no-op. *)
type edge = {
  mutable e_ids : int array;
  mutable e_len : int;
  mutable e_wake_time : float;
  mutable e_wake : unit -> unit;
}

type 'a t = {
  engine : Engine.t;
  n : int;
  latency : src:int -> dst:int -> Latency.t;
  fifo : bool;
  arena : bool;
  batch : bool;
  mutable slots : slot array;
  mutable free : int array;  (* free-list stack of slot indices *)
  mutable free_len : int;
  mutable send_seq : int;
  edges : edge array;  (* [src * n + dst]; empty unless [batch] *)
  faults : faults;
  channel_rng : Rng.t array array;  (* [src].(dst) *)
  last_delivery : Sim_time.t array array;  (* FIFO floor per channel *)
  handlers : 'a handler option array;
  cut_link : bool array array;  (* [src].(dst): true = partitioned *)
  oneway : bool array array;
      (* [src].(dst): true = the src->dst direction alone is cut — the
         asymmetric-partition filter; the reverse direction is
         independent *)
  flap_start : float array array;  (* [src].(dst): episode arm time *)
  flap_period : float array array;
  flap_until : float array array;
      (* a link flaps while [now < flap_until]: it oscillates
         cut/healed with the given half-period, cut first.  The state
         is a pure function of the clock — no scheduled events, no RNG
         — so an unarmed link costs one float compare per send. *)
  inflate_factor : float array array;
  inflate_until : float array array;
      (* per-link tail-latency spike: while [now < inflate_until] the
         sampled delay is multiplied by [inflate_factor] (>= 1).  The
         underlying latency sample is drawn as usual, so the RNG
         stream is identical with or without the spike armed. *)
  crashed : bool array;
  incarnations : int array;
      (* per-process incarnation number; envelopes are stamped with the
         destination's incarnation at send, and a delivery addressed to
         an earlier incarnation is a counted stale drop *)
  generations : int array;
      (* per-slot occupancy generation (slot reuse): bumped when a
         retired slot is recycled to a new logical process.  Staleness
         is two-layer — an envelope must match the destination's
         (incarnation, generation) pair at delivery, so traffic
         addressed to a slot's previous occupant can never reach the
         new one *)
  mangle : 'a -> 'a;
  mutable member : int -> bool;
      (* the membership oracle: a delivery to a slot outside the current
         view is a counted drop, never a [No_handler] crash *)
  mutable epoch : int;  (* current membership view epoch (informational) *)
  probes : probes;
  wire : Wire.t;
  measure : ('a -> Wire.frame) option;
      (* [Some] only when [wire] is live: frame-shape extractor for the
         byte-cost accountant *)
  sizer : ('a -> int) option;
      (* analytic payload sizer for [net_payload_bytes]; when absent a
         live registry falls back to Marshal-encoded size *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable corrupted : int;
  mutable partition_dropped : int;
  mutable crash_dropped : int;
  mutable stale_dropped : int;
  mutable nonmember_dropped : int;
  mutable oneway_dropped : int;
  mutable flap_dropped : int;
  mutable delay_inflated : int;
}

(* ---- delivery ------------------------------------------------------ *)

(* Delivery-time checks shared by every transmission path (fresh
   closure, arena slot, batched drain). [at] is the engine clock: the
   engine advances it to the event's timestamp before running it, so
   reading it here is equivalent to capturing the delivery time at
   scheduling. *)
let deliver t ~src ~dst ~dst_inc ~dst_gen payload =
  let at = Engine.now t.engine in
  (* a crashed destination silently loses the message: the frame
     reached a machine that is not running.  Counted, not raised —
     crash-stop is a modelled fault, not a harness bug. *)
  if t.crashed.(dst) then begin
    t.crash_dropped <- t.crash_dropped + 1;
    Metrics.incr t.probes.p_drop_crash
  end
  else if t.incarnations.(dst) <> dst_inc || t.generations.(dst) <> dst_gen
  then begin
    (* the destination's identity changed while this envelope was in
       flight — it crashed and rejoined as a fresh incarnation, or its
       slot was retired and recycled to a new occupant (a bumped
       generation).  The old identity the envelope was addressed to no
       longer exists.  Retransmission layers re-send under the new
       stamp, so nothing is lost — but the stale copy must not reach
       the reborn (or newborn) process. *)
    t.stale_dropped <- t.stale_dropped + 1;
    Metrics.incr t.probes.p_drop_stale
  end
  else if not (t.member dst) then begin
    (* the membership view says this slot is not (or no longer) a
       member: a frame that raced a leave, or was addressed to a
       never-joined slot.  Accounted, not raised — only a missing
       handler on a live {e member} is a harness bug. *)
    t.nonmember_dropped <- t.nonmember_dropped + 1;
    Metrics.incr t.probes.p_drop_nonmember
  end
  else begin
    t.delivered <- t.delivered + 1;
    Metrics.incr t.probes.p_delivered;
    match t.handlers.(dst) with
    | Some h -> h ~src ~at (Obj.obj payload)
    | None -> raise (No_handler { dst; src; at })
  end

(* ---- arena slots --------------------------------------------------- *)

let fire_slot t i =
  let s = t.slots.(i) in
  let src = s.s_src and dst = s.s_dst in
  let dst_inc = s.s_dst_inc and dst_gen = s.s_dst_gen in
  let payload = s.s_payload in
  s.s_payload <- s_dummy;
  (* release before the handler runs: a send from inside it can reuse
     the slot without growing the arena *)
  t.free.(t.free_len) <- i;
  t.free_len <- t.free_len + 1;
  deliver t ~src ~dst ~dst_inc ~dst_gen payload

let grow_slots t =
  let old = Array.length t.slots in
  let cap = if old = 0 then 64 else old * 2 in
  let slots =
    Array.init cap (fun i ->
        if i < old then t.slots.(i)
        else
          {
            s_time = 0.;
            s_seq = 0;
            s_src = 0;
            s_dst = 0;
            s_dst_inc = 0;
            s_dst_gen = 0;
            s_payload = s_dummy;
            s_fire = ignore;
          })
  in
  let free = Array.make cap 0 in
  Array.blit t.free 0 free 0 t.free_len;
  t.slots <- slots;
  t.free <- free;
  for i = old to cap - 1 do
    slots.(i).s_fire <- (fun () -> fire_slot t i);
    free.(t.free_len) <- i;
    t.free_len <- t.free_len + 1
  done

let alloc_slot t =
  if t.free_len = 0 then grow_slots t;
  t.free_len <- t.free_len - 1;
  t.free.(t.free_len)

let fill_slot t ~src ~dst ~at payload =
  let i = alloc_slot t in
  let s = t.slots.(i) in
  s.s_time <- Sim_time.to_float at;
  s.s_seq <- t.send_seq;
  t.send_seq <- t.send_seq + 1;
  s.s_src <- src;
  s.s_dst <- dst;
  s.s_dst_inc <- t.incarnations.(dst);
  s.s_dst_gen <- t.generations.(dst);
  s.s_payload <- Obj.repr payload;
  i

(* ---- per-edge delivery batching ------------------------------------ *)

let edge_less t ia ib =
  let a = t.slots.(ia) and b = t.slots.(ib) in
  a.s_time < b.s_time || (a.s_time = b.s_time && a.s_seq < b.s_seq)

let edge_push t e i =
  if e.e_len = Array.length e.e_ids then begin
    let cap = if e.e_len = 0 then 8 else e.e_len * 2 in
    let ids = Array.make cap 0 in
    Array.blit e.e_ids 0 ids 0 e.e_len;
    e.e_ids <- ids
  end;
  let ids = e.e_ids in
  let j = ref e.e_len in
  e.e_len <- e.e_len + 1;
  let stop = ref false in
  while (not !stop) && !j > 0 do
    let p = (!j - 1) / 2 in
    if edge_less t i ids.(p) then begin
      ids.(!j) <- ids.(p);
      j := p
    end
    else stop := true
  done;
  ids.(!j) <- i

let edge_pop t e =
  let ids = e.e_ids in
  let top = ids.(0) in
  let n = e.e_len - 1 in
  e.e_len <- n;
  if n > 0 then begin
    let last = ids.(n) in
    let j = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !j) + 1 in
      if l >= n then stop := true
      else begin
        let r = l + 1 in
        let c = if r < n && edge_less t ids.(r) ids.(l) then r else l in
        if edge_less t ids.(c) last then begin
          ids.(!j) <- ids.(c);
          j := c
        end
        else stop := true
      end
    done;
    ids.(!j) <- last
  end;
  top

(* Arm the edge's wakeup at its current head time, unless an armed
   wakeup already covers it (is due no later). *)
let edge_arm t e =
  if e.e_len > 0 then begin
    let ht = t.slots.(e.e_ids.(0)).s_time in
    if ht < e.e_wake_time then begin
      e.e_wake_time <- ht;
      Engine.schedule_at t.engine (Sim_time.of_float ht) e.e_wake
    end
  end

let fire_edge t e =
  let now = Sim_time.to_float (Engine.now t.engine) in
  if e.e_wake_time = now then begin
    (* the earliest armed wakeup: drain every pending envelope due at
       this instant that was already in flight when the wakeup fired.
       [snap] fences off same-instant envelopes scheduled by handlers
       running inside this drain — those get their own wakeup, so a
       handler never observes a message sent "after" it in scheduling
       order, exactly as with one engine event per envelope. *)
    e.e_wake_time <- infinity;
    let snap = t.send_seq in
    let continue = ref true in
    while !continue && e.e_len > 0 do
      let i = e.e_ids.(0) in
      let s = t.slots.(i) in
      if s.s_time = now && s.s_seq < snap then begin
        ignore (edge_pop t e : int);
        fire_slot t i
      end
      else continue := false
    done;
    edge_arm t e
  end
(* otherwise: stale — an earlier re-arm superseded this wakeup *)

let create ~engine ~rng ~n ~latency ?(fifo = false) ?(arena = true)
    ?(batch = false) ?(faults = no_faults) ?mangle
    ?(metrics = Metrics.null ()) ?(wire = Wire.null ()) ?measure ?sizer () =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  let check_prob name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Network.create: %s must be in [0,1]" name)
  in
  check_prob "drop probability" faults.drop;
  check_prob "duplicate probability" faults.duplicate;
  check_prob "corrupt probability" faults.corrupt;
  let mangle =
    match mangle with
    | Some f -> f
    | None ->
        if faults.corrupt > 0. then
          invalid_arg
            "Network.create: corrupt > 0 needs a ~mangle function \
             (the network is payload-generic and cannot flip bits itself)";
        Fun.id
  in
  let channel_rng =
    Array.init n (fun _ -> Array.init n (fun _ -> Rng.split rng))
  in
  let edges =
    if batch then
      Array.init (n * n) (fun _ ->
          { e_ids = [||]; e_len = 0; e_wake_time = infinity; e_wake = ignore })
    else [||]
  in
  let t =
    {
      engine;
      n;
      latency;
      fifo;
      arena;
      batch;
      slots = [||];
      free = [||];
      free_len = 0;
      send_seq = 0;
      edges;
      faults;
    channel_rng;
    last_delivery = Array.init n (fun _ -> Array.make n Sim_time.zero);
    handlers = Array.make n None;
    cut_link = Array.init n (fun _ -> Array.make n false);
    oneway = Array.init n (fun _ -> Array.make n false);
    flap_start = Array.init n (fun _ -> Array.make n 0.);
    flap_period = Array.init n (fun _ -> Array.make n 1.);
    flap_until = Array.init n (fun _ -> Array.make n neg_infinity);
    inflate_factor = Array.init n (fun _ -> Array.make n 1.);
    inflate_until = Array.init n (fun _ -> Array.make n neg_infinity);
    crashed = Array.make n false;
    incarnations = Array.make n 0;
    generations = Array.make n 0;
    mangle;
    member = (fun _ -> true);
    epoch = 0;
    probes = probes metrics;
    wire;
    measure = (if Wire.enabled wire then measure else None);
    sizer;
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    corrupted = 0;
      partition_dropped = 0;
      crash_dropped = 0;
      stale_dropped = 0;
      nonmember_dropped = 0;
      oneway_dropped = 0;
      flap_dropped = 0;
      delay_inflated = 0;
    }
  in
  (* the wakeup thunks need the network itself; patch them in once *)
  if batch then
    Array.iter (fun e -> e.e_wake <- (fun () -> fire_edge t e)) edges;
  t

let n t = t.n

let check_proc t i name =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Network.%s: process id out of range" name)

let set_handler t i h =
  check_proc t i "set_handler";
  t.handlers.(i) <- Some h

(* ---- partitions ---------------------------------------------------- *)

let cut t ~a ~b =
  check_proc t a "cut";
  check_proc t b "cut";
  if not t.cut_link.(a).(b) then Metrics.incr t.probes.p_partition_cuts;
  t.cut_link.(a).(b) <- true;
  t.cut_link.(b).(a) <- true

let heal t ~a ~b =
  check_proc t a "heal";
  check_proc t b "heal";
  t.cut_link.(a).(b) <- false;
  t.cut_link.(b).(a) <- false;
  (* a heal restores the link completely: pending one-way filters and
     flap episodes on the pair end with it *)
  t.oneway.(a).(b) <- false;
  t.oneway.(b).(a) <- false;
  t.flap_until.(a).(b) <- neg_infinity;
  t.flap_until.(b).(a) <- neg_infinity

let is_cut t ~a ~b =
  check_proc t a "is_cut";
  check_proc t b "is_cut";
  t.cut_link.(a).(b)

let partition t groups =
  (* cut every link between distinct groups; links inside a group are
     left as they are *)
  let group_of = Array.make t.n (-1) in
  List.iteri
    (fun g procs ->
      List.iter
        (fun p ->
          check_proc t p "partition";
          if group_of.(p) >= 0 then
            invalid_arg
              (Printf.sprintf
                 "Network.partition: process %d appears in two groups" p);
          group_of.(p) <- g)
        procs)
    groups;
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      if a <> b && group_of.(a) >= 0 && group_of.(b) >= 0
         && group_of.(a) <> group_of.(b)
      then begin
        if a < b && not t.cut_link.(a).(b) then
          Metrics.incr t.probes.p_partition_cuts;
        t.cut_link.(a).(b) <- true
      end
    done
  done

let heal_all t =
  for a = 0 to t.n - 1 do
    for b = 0 to t.n - 1 do
      t.cut_link.(a).(b) <- false;
      t.oneway.(a).(b) <- false;
      t.flap_until.(a).(b) <- neg_infinity
    done
  done

(* ---- link-level faults (nemesis primitives) ------------------------ *)

let cut_oneway t ~src ~dst =
  check_proc t src "cut_oneway";
  check_proc t dst "cut_oneway";
  if not t.oneway.(src).(dst) then Metrics.incr t.probes.p_partition_cuts;
  t.oneway.(src).(dst) <- true

let heal_oneway t ~src ~dst =
  check_proc t src "heal_oneway";
  check_proc t dst "heal_oneway";
  t.oneway.(src).(dst) <- false

let is_cut_oneway t ~src ~dst =
  check_proc t src "is_cut_oneway";
  check_proc t dst "is_cut_oneway";
  t.oneway.(src).(dst)

let flap t ~a ~b ~period ~until_ =
  check_proc t a "flap";
  check_proc t b "flap";
  if not (period > 0. && Float.is_finite period) then
    invalid_arg "Network.flap: period must be positive and finite";
  let start = Sim_time.to_float (Engine.now t.engine) in
  t.flap_start.(a).(b) <- start;
  t.flap_start.(b).(a) <- start;
  t.flap_period.(a).(b) <- period;
  t.flap_period.(b).(a) <- period;
  t.flap_until.(a).(b) <- until_;
  t.flap_until.(b).(a) <- until_

(* Flap state is computed, never stored: the link is cut during even
   half-periods of an armed episode (cut first, so arming is
   immediately visible), healed during odd ones, healed once the
   episode expires.  Both the send path and the cursor below evaluate
   the same expression, so they can never disagree. *)
let flap_cut_now t ~src ~dst ~now =
  now < t.flap_until.(src).(dst)
  && now >= t.flap_start.(src).(dst)
  &&
  let phase =
    int_of_float ((now -. t.flap_start.(src).(dst)) /. t.flap_period.(src).(dst))
  in
  phase land 1 = 0

let is_flap_cut t ~src ~dst =
  check_proc t src "is_flap_cut";
  check_proc t dst "is_flap_cut";
  flap_cut_now t ~src ~dst ~now:(Sim_time.to_float (Engine.now t.engine))

let inflate t ~src ~dst ~factor ~until_ =
  check_proc t src "inflate";
  check_proc t dst "inflate";
  if not (factor >= 1. && Float.is_finite factor) then
    invalid_arg "Network.inflate: factor must be >= 1 and finite";
  t.inflate_factor.(src).(dst) <- factor;
  t.inflate_until.(src).(dst) <- until_

(* ---- crash-stop marks --------------------------------------------- *)

let mark_crashed t p =
  check_proc t p "mark_crashed";
  t.crashed.(p) <- true

let mark_recovered t p =
  check_proc t p "mark_recovered";
  t.crashed.(p) <- false

let is_crashed t p =
  check_proc t p "is_crashed";
  t.crashed.(p)

(* ---- incarnations and view epochs --------------------------------- *)

let bump_incarnation t p =
  check_proc t p "bump_incarnation";
  t.incarnations.(p) <- t.incarnations.(p) + 1

let incarnation t p =
  check_proc t p "incarnation";
  t.incarnations.(p)

let bump_generation t p =
  check_proc t p "bump_generation";
  t.generations.(p) <- t.generations.(p) + 1

let generation t p =
  check_proc t p "generation";
  t.generations.(p)

let set_membership t f = t.member <- f

let set_epoch t e =
  if e < t.epoch then invalid_arg "Network.set_epoch: epochs only advance";
  t.epoch <- e

let epoch t = t.epoch

(* ---- transmission -------------------------------------------------- *)

(* Every envelope is view-stamped: it captures the destination's
   incarnation at transmission time (see [fill_slot] for the arena
   paths). Three scheduling strategies share [deliver]:

   - [~arena:false]: the seed path — a fresh closure per envelope,
     kept as the allocation reference for differential testing;
   - [~arena:true] (default): a recycled slot whose preallocated
     [s_fire] thunk is the engine event — same one-event-per-envelope
     schedule, zero steady-state allocation;
   - [~batch:true]: slots parked on a per-(src,dst) heap; one wakeup
     per distinct delivery instant drains the batch in (time, seq)
     order, collapsing same-edge bursts into a single engine event. *)

let schedule_closure t ~src ~dst ~at payload =
  let dst_inc = t.incarnations.(dst) in
  let dst_gen = t.generations.(dst) in
  let payload = Obj.repr payload in
  Engine.schedule_at t.engine at (fun () ->
      deliver t ~src ~dst ~dst_inc ~dst_gen payload)

let schedule_arena t ~src ~dst ~at payload =
  let i = fill_slot t ~src ~dst ~at payload in
  Engine.schedule_at t.engine at t.slots.(i).s_fire

let schedule_batched t ~src ~dst ~at payload =
  let i = fill_slot t ~src ~dst ~at payload in
  let e = t.edges.((src * t.n) + dst) in
  edge_push t e i;
  edge_arm t e

let schedule_delivery t ~src ~dst ~at payload =
  if t.batch then schedule_batched t ~src ~dst ~at payload
  else if t.arena then schedule_arena t ~src ~dst ~at payload
  else schedule_closure t ~src ~dst ~at payload

let send t ~src ~dst payload =
  check_proc t src "send";
  check_proc t dst "send";
  if src = dst then
    invalid_arg "Network.send: self-sends are not modelled (apply locally)";
  let rng = t.channel_rng.(src).(dst) in
  t.sent <- t.sent + 1;
  Metrics.incr t.probes.p_sends;
  if t.probes.p_live then
    (* payload sizing is the one probe whose computation is not free;
       the null registry never reaches it. The analytic sizer (frame
       shape priced under the wire cost model) replaces the seed's
       Marshal round-trip when the driver installs one — same counter,
       model bytes instead of OCaml-marshalling bytes *)
    Metrics.add t.probes.p_payload_bytes
      (match t.sizer with
      | Some f -> f payload
      | None -> String.length (Marshal.to_string payload []));
  (match t.measure with
  | Some f -> Wire.record t.wire ~src ~dst (f payload)
  | None -> ());
  if t.cut_link.(src).(dst) then begin
    (* partitioned link: the transmission silently disappears *)
    t.partition_dropped <- t.partition_dropped + 1;
    Metrics.incr t.probes.p_drop_partition
  end
  else if t.oneway.(src).(dst) then begin
    (* asymmetric cut: this direction alone is unplugged *)
    t.oneway_dropped <- t.oneway_dropped + 1;
    Metrics.incr t.probes.p_drop_oneway
  end
  else if
    flap_cut_now t ~src ~dst
      ~now:(Sim_time.to_float (Engine.now t.engine))
  then begin
    t.flap_dropped <- t.flap_dropped + 1;
    Metrics.incr t.probes.p_drop_flap
  end
  else if t.faults.drop > 0. && Rng.bernoulli rng t.faults.drop then begin
    t.dropped <- t.dropped + 1;
    Metrics.incr t.probes.p_drop_random
  end
  else begin
    let payload =
      if t.faults.corrupt > 0. && Rng.bernoulli rng t.faults.corrupt
      then begin
        t.corrupted <- t.corrupted + 1;
        Metrics.incr t.probes.p_corrupted;
        t.mangle payload
      end
      else payload
    in
    let delay = Latency.sample (t.latency ~src ~dst) rng in
    let delay =
      (* tail-latency spike: multiply the already-sampled delay, so
         arming a spike never shifts the channel's RNG stream *)
      if
        Sim_time.to_float (Engine.now t.engine) < t.inflate_until.(src).(dst)
      then begin
        t.delay_inflated <- t.delay_inflated + 1;
        Metrics.incr t.probes.p_delay_inflated;
        delay *. t.inflate_factor.(src).(dst)
      end
      else delay
    in
    let at = Sim_time.add (Engine.now t.engine) delay in
    let at =
      if t.fifo then begin
        (* never deliver before an earlier message on the same channel;
           a strictly positive epsilon keeps deliveries distinct *)
        let floor = Sim_time.add t.last_delivery.(src).(dst) 1e-9 in
        Sim_time.max at floor
      end
      else at
    in
    if t.fifo then t.last_delivery.(src).(dst) <- at;
    if t.probes.p_live then
      Metrics.observe_q t.probes.p_delivery_delay
        (Sim_time.to_float at -. Sim_time.to_float (Engine.now t.engine));
    schedule_delivery t ~src ~dst ~at payload;
    if t.faults.duplicate > 0. && Rng.bernoulli rng t.faults.duplicate
    then begin
      t.duplicated <- t.duplicated + 1;
      Metrics.incr t.probes.p_duplicated;
      let extra = Latency.sample (t.latency ~src ~dst) rng in
      let at' = Sim_time.add (Engine.now t.engine) extra in
      schedule_delivery t ~src ~dst ~at:at' payload
    end
  end

let broadcast t ~src payload =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst payload
  done

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let messages_partition_dropped t = t.partition_dropped
let messages_crash_dropped t = t.crash_dropped
let messages_stale_dropped t = t.stale_dropped
let messages_nonmember_dropped t = t.nonmember_dropped
let messages_oneway_dropped t = t.oneway_dropped
let messages_flap_dropped t = t.flap_dropped
let messages_delay_inflated t = t.delay_inflated
let messages_corrupted t = t.corrupted

let in_flight t =
  (* duplicate copies add deliveries beyond sends; clamp at zero *)
  max 0
    (t.sent - t.dropped - t.partition_dropped - t.oneway_dropped
    - t.flap_dropped
    - (t.delivered + t.crash_dropped + t.stale_dropped
      + t.nonmember_dropped - t.duplicated))
