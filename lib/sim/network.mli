(** Simulated message-passing network.

    Models the paper's §3.1 system: [n] processes connected by reliable
    point-to-point channels — every message sent is delivered exactly
    once, no spurious messages, delays finite but arbitrary. Channels
    are {e not} FIFO by default (nothing in the paper requires it, and
    reordering is precisely what makes write delays appear); FIFO
    per-channel delivery can be switched on to study its effect.

    Beyond the probabilistic {!faults}, the network carries two pieces
    of {e injected-failure} state used by the crash–recovery harness:

    - {b partitions}: a cut link silently drops every transmission at
      send time (counted in {!messages_partition_dropped});
    - {b crash marks}: a message arriving at a process marked crashed is
      a counted silent drop ({!messages_crash_dropped}) — the frame
      reached a machine that is not running, which is a modelled fault,
      not an error.

    The network is generic in the message payload. Delivery invokes the
    destination's handler inside the engine, so a handler runs
    atomically at its delivery timestamp. *)

type 'a t

type 'a handler = src:int -> at:Sim_time.t -> 'a -> unit

type faults = {
  drop : float;  (** probability a transmission is lost *)
  duplicate : float;  (** probability a delivered message is delivered
                          twice (the copy takes an independent delay) *)
  corrupt : float;
      (** probability a delivered payload is mangled in transit (the
          caller's [~mangle] is applied to it); models bit-flips that a
          checksumming layer must catch *)
}

val no_faults : faults

exception No_handler of { dst : int; src : int; at : Sim_time.t }
(** Raised at delivery time when the destination has no handler
    installed; carries the destination, the sender and the simulated
    delivery timestamp. *)

val create :
  engine:Engine.t ->
  rng:Rng.t ->
  n:int ->
  latency:(src:int -> dst:int -> Latency.t) ->
  ?fifo:bool ->
  ?arena:bool ->
  ?batch:bool ->
  ?faults:faults ->
  ?mangle:('a -> 'a) ->
  ?metrics:Dsm_obs.Metrics.t ->
  ?wire:Dsm_obs.Wire.t ->
  ?measure:('a -> Dsm_obs.Wire.frame) ->
  ?sizer:('a -> int) ->
  unit ->
  'a t
(** [create ~engine ~rng ~n ~latency ()] builds an [n]-process network.
    Each ordered channel gets its own split RNG stream, so adding
    traffic on one channel does not perturb another channel's delays.

    [?metrics] (default: the null registry) receives [net_sends],
    [net_delivered],
    [net_dropped{cause=random|partition|crash|stale|nonmember|oneway|flap}],
    [net_delayed{cause=inflation}], [net_duplicated], [net_corrupted],
    [net_partition_cuts], [net_payload_bytes] and the
    [net_delivery_delay] quantile sketch (sampled transit delay of each
    scheduled delivery). Probes never touch RNG streams or the event
    schedule.

    [?wire] with [?measure] installs byte-cost accounting: every
    [send] — delivered or dropped; bytes leave the sender either way —
    prices [measure payload] into the accountant under
    its (src, dst) edge (see {!Dsm_obs.Wire}) — purely observational,
    the frame on the wire is unchanged. [?sizer] replaces the
    [net_payload_bytes] measurement (Marshal-encoded size when absent)
    with an analytic byte count; drivers pass
    [Dsm_obs.Wire.frame_bytes ∘ measure] so the counter agrees with the
    accountant and the hot path stops serializing every payload
    twice.

    [?arena] (default [true]) routes envelopes through a flat slot
    arena: an in-flight message occupies a recycled slot whose delivery
    thunk is preallocated, so steady-state traffic allocates nothing per
    envelope. [~arena:false] restores the seed fresh-closure-per-message
    path — behaviourally identical (same engine events, same RNG
    consumption, same delivery order), kept as the reference for
    differential testing.

    [?batch] (default [false]) additionally batches deliveries per
    (src, dst) edge: pending envelopes park on a per-edge heap ordered
    by (delivery time, send order) and a single wakeup per distinct
    delivery instant drains the due batch, collapsing same-edge bursts
    (broadcast flushes, retransmission storms) into one engine event
    each. Delivery {e times} and per-edge delivery {e order} are
    unchanged; only the interleaving of same-instant events {e across}
    different edges can differ from the unbatched schedule, so runs
    that must be byte-identical to pinned seed traces keep the
    default.

    [?mangle] is the corruption model: when the [corrupt] fault fires,
    the delivered payload is [mangle payload] instead of [payload]. The
    network is payload-generic, so it cannot flip bits itself; [create]
    rejects [corrupt > 0] without a [~mangle].

    With [?faults], the network no longer implements the paper's §3.1
    reliable-channel assumption: transmissions may be dropped or
    duplicated. The {!Reliable_channel} layer rebuilds exactly-once
    delivery on top (retransmission + acknowledgment + deduplication);
    running a protocol directly over a faulty network is how the
    failure-injection tests provoke checker violations.
    @raise Invalid_argument if [n <= 0] or a fault probability is
    outside [0,1]. *)

val n : 'a t -> int

val set_handler : 'a t -> int -> 'a handler -> unit
(** Installs the delivery handler of a process. Messages delivered to a
    process without a handler raise {!No_handler} at delivery time —
    unless the destination is marked crashed or the membership oracle
    ({!set_membership}) excludes it, in which case the delivery is a
    counted silent drop: only a missing handler on a live {e member} is
    a harness bug. *)

val set_membership : 'a t -> (int -> bool) -> unit
(** Installs the membership oracle consulted at delivery time: a frame
    reaching a slot for which the oracle returns [false] — one that
    raced a graceful leave, or was addressed to a never-joined slot —
    is a counted drop ([net_dropped{cause=nonmember}],
    {!messages_nonmember_dropped}), never a {!No_handler} crash.
    Default: every slot is a member (the static-membership model). *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
(** Schedules delivery of one message at [now + latency(src,dst)].
    Sends over a cut link are silently dropped (and counted).
    Self-sends are rejected ([Invalid_argument]) — protocols apply their
    own writes locally, as in Figure 4 of the paper. *)

val broadcast : 'a t -> src:int -> 'a -> unit
(** [send] to every process but [src] (the paper's
    [send m to Π − p_i]). Per-destination latencies are independent. *)

(** {1 Partitions}

    Partition state is checked at {e send} time: a message in flight
    when the link is cut still arrives, a message sent while the link
    is cut is lost even if the link heals before its would-be delivery.
    This is the standard fail-cut model — the cable is unplugged, what
    was on the wire gets through. *)

val cut : 'a t -> a:int -> b:int -> unit
(** Cuts the link between [a] and [b], both directions. *)

val heal : 'a t -> a:int -> b:int -> unit
(** Heals the link between [a] and [b], both directions. *)

val is_cut : 'a t -> a:int -> b:int -> bool

val partition : 'a t -> int list list -> unit
(** [partition t groups] cuts every link between processes of distinct
    groups. Links inside a group — and links touching a process in no
    group — are left as they are.
    @raise Invalid_argument if a process appears in two groups. *)

val heal_all : 'a t -> unit
(** Heals every cut link — symmetric cuts, one-way cuts and flap
    episodes alike. *)

(** {1 Link-level faults (nemesis primitives)}

    Finer-grained adversarial link state, all checked at {e send} time
    like symmetric partitions (fail-cut model), each counted under its
    own cause label so a campaign can attribute every lost frame:

    - {b asymmetric cuts}: one direction of a link is unplugged while
      the reverse keeps working ([net_dropped{cause=oneway}]) — the
      classic half-open failure that symmetric [cut] cannot express;
    - {b flapping}: a link oscillates cut/healed on a fixed half-period
      until an expiry instant ([net_dropped{cause=flap}]). The state is
      a pure function of the simulation clock — no scheduled events and
      no RNG draws — so arming a flap cannot perturb anything else;
    - {b delay inflation}: a per-direction tail-latency spike
      multiplying the sampled delay by a factor [>= 1] until an expiry
      instant ([net_delayed{cause=inflation}]). The base delay is drawn
      from the channel RNG as usual, so the stream of random numbers is
      identical with or without the spike. *)

val cut_oneway : 'a t -> src:int -> dst:int -> unit
(** Cuts only the [src -> dst] direction; [dst -> src] is untouched. *)

val heal_oneway : 'a t -> src:int -> dst:int -> unit
val is_cut_oneway : 'a t -> src:int -> dst:int -> bool

val flap : 'a t -> a:int -> b:int -> period:float -> until_:float -> unit
(** [flap t ~a ~b ~period ~until_] arms a flap episode on the pair
    (both directions): starting now, the link is cut for [period] time
    units, healed for the next [period], and so on — cut first, so the
    fault is immediately visible — until the clock reaches [until_],
    after which the link is healed. Re-arming overwrites the previous
    episode; {!heal} or {!heal_all} cancels it.
    @raise Invalid_argument if [period] is not positive and finite. *)

val is_flap_cut : 'a t -> src:int -> dst:int -> bool
(** Whether an armed flap episode has the link cut at this instant. *)

val inflate : 'a t -> src:int -> dst:int -> factor:float -> until_:float -> unit
(** [inflate t ~src ~dst ~factor ~until_] multiplies every delay
    sampled for [src -> dst] by [factor] until the clock reaches
    [until_] (each inflated send counted in
    {!messages_delay_inflated}). Re-arming overwrites.
    @raise Invalid_argument if [factor < 1] or not finite. *)

(** {1 Crash-stop marks}

    The network does not crash processes — the fault-campaign driver
    does, by discarding their volatile state. Marking tells the network
    to turn deliveries to the process into counted silent drops until
    {!mark_recovered}. The check happens at {e delivery} time: a
    message in flight across the whole downtime is delivered to the
    recovered process. *)

val mark_crashed : 'a t -> int -> unit
val mark_recovered : 'a t -> int -> unit
val is_crashed : 'a t -> int -> bool

(** {1 Incarnations and view epochs}

    Every transmission is a {e view-stamped envelope}: it captures the
    destination's incarnation number at send time. A process that
    rejoins after a crash does so under a bumped incarnation
    ({!bump_incarnation}); envelopes still in flight toward the old
    incarnation are counted stale drops at delivery
    ({!messages_stale_dropped}) — the machine they were addressed to no
    longer exists. Retransmission layers re-send under the fresh stamp.

    PR 2's plain crash/recover cycle never bumps incarnations, so
    static-membership campaigns behave exactly as before.

    The {e epoch} is the generation counter of the membership view,
    maintained by the driver ({!set_epoch}); it only advances. Old-epoch
    messages are still causally valid (views only grow), so epochs are
    not a drop criterion — they exist for observability and for drivers
    to stamp into their own payloads. *)

val bump_incarnation : 'a t -> int -> unit
val incarnation : 'a t -> int -> int

val bump_generation : 'a t -> int -> unit
(** Slot-reuse layer of the staleness stamp: when a retired slot is
    recycled to a {e new} logical process, the driver bumps the slot's
    occupancy generation. Envelopes capture the destination's
    [(incarnation, generation)] pair at send; a delivery whose stamp
    mismatches on {e either} coordinate is a counted stale drop — the
    previous occupant's traffic can never reach the new one.
    Generation-0 slots (never reused) behave exactly as before. *)

val generation : 'a t -> int -> int

val set_epoch : 'a t -> int -> unit
(** @raise Invalid_argument if the epoch would move backwards. *)

val epoch : 'a t -> int

(** {1 Counters} *)

val messages_sent : 'a t -> int
val messages_delivered : 'a t -> int

val messages_dropped : 'a t -> int
val messages_duplicated : 'a t -> int

val messages_partition_dropped : 'a t -> int
(** Transmissions lost to a cut link. *)

val messages_crash_dropped : 'a t -> int
(** Deliveries lost to a crashed destination. *)

val messages_stale_dropped : 'a t -> int
(** Deliveries addressed to a superseded incarnation. *)

val messages_nonmember_dropped : 'a t -> int
(** Deliveries to a slot outside the membership view. *)

val messages_oneway_dropped : 'a t -> int
(** Transmissions lost to an asymmetric (one-way) cut. *)

val messages_flap_dropped : 'a t -> int
(** Transmissions lost to a flapping link's cut phase. *)

val messages_delay_inflated : 'a t -> int
(** Transmissions whose delay was multiplied by an armed inflation
    spike (delivered late, not lost). *)

val messages_corrupted : 'a t -> int
(** Payloads mangled in transit by the [corrupt] fault. *)

val in_flight : 'a t -> int
(** Messages sent and neither delivered nor dropped (duplicate copies
    still in transit are not counted). *)
