module Metrics = Dsm_obs.Metrics

type 'a frame =
  | Data of { cseq : int; inc : int; gen : int; sum : int; payload : 'a }
  | Ack of { cseq : int; sum : int }

(* Payload checksums. [Hashtbl.hash] is cheap and deterministic; it
   truncates very deep structures, but the simulated corruption model
   ({!corrupt_frame}) mangles the checksum field itself, so detection of
   injected corruption is exact. On real hardware this slot would hold a
   CRC. *)
let data_sum ~cseq ~inc ~gen payload =
  (* generation-0 frames hash exactly as before the slot-reuse layer:
     every pinned checksum (and thus every seed trace) is preserved *)
  if gen = 0 then Hashtbl.hash (cseq, inc, payload)
  else Hashtbl.hash (cseq, inc, gen, payload)
let ack_sum ~cseq = Hashtbl.hash (cseq, 0x5ca1ab1e)

(* The corruption model handed to {!Network.create} as [~mangle]: a bit
   flip anywhere in the frame makes the checksum stop matching, which we
   model directly by flipping the checksum. *)
let corrupt_frame = function
  | Data d -> Data { d with sum = d.sum lxor 0x5a5a5a5a }
  | Ack a -> Ack { a with sum = a.sum lxor 0x5a5a5a5a }

(* Frame-shape measurer for the wire accountant: the channel envelope
   adds cseq + stamp + sum (three scalars) around the protocol payload —
   the incarnation and the slot generation share one stamp word, as a
   real header would pack two small reuse counters; an acknowledgment is
   cseq + sum and carries no causal metadata. *)
let wire_frame inner = function
  | Data { payload; _ } ->
      let f = inner payload in
      { f with Dsm_obs.Wire.scalars = f.Dsm_obs.Wire.scalars + 3 }
  | Ack _ -> { Dsm_obs.Wire.kind = "ack"; scalars = 2; dots = 0; vectors = [] }

type probes = {
  p_payloads : Metrics.counter;
  p_retransmissions : Metrics.counter;
  p_dedup_hits : Metrics.counter;
  p_aborted : Metrics.counter;
  p_backoff_level : Metrics.histogram;
      (* attempts counter at each retransmission: level 1 = first
         retransmit, deeper levels mean the exponential backoff engaged *)
  p_corrupt : Metrics.counter;
  p_stale : Metrics.counter;
}

let probes metrics =
  {
    p_payloads = Metrics.counter metrics "chan_payloads";
    p_retransmissions = Metrics.counter metrics "chan_retransmissions";
    p_dedup_hits = Metrics.counter metrics "chan_dedup_hits";
    p_aborted = Metrics.counter metrics "chan_aborted";
    p_backoff_level =
      Metrics.histogram metrics "chan_backoff_level" ~lo:0. ~hi:16. ~bins:16;
    p_corrupt = Metrics.counter metrics "chan_corrupt_total";
    p_stale = Metrics.counter metrics "chan_stale_total";
  }

type 'a pending = {
  payload : 'a;
  inc : int;  (* sender incarnation captured at the original send *)
  gen : int;  (* sender slot generation captured at the original send *)
  mutable acked : bool;
  mutable aborted : bool;
  mutable attempts : int;  (* retransmissions so far, for backoff *)
}

type 'a t = {
  engine : Engine.t;
  network : 'a frame Network.t;
  retransmit_after : float;
  backoff : float;  (* interval multiplier per retransmission *)
  backoff_cap : float;  (* upper bound on the interval *)
  jitter : float;  (* max fractional perturbation, needs [rng] *)
  rng : Rng.t option;  (* split stream for jitter draws *)
  n : int;
  next_seq : int array array;  (* [src].(dst): next data sequence number *)
  outstanding : (int, 'a pending) Hashtbl.t array;
      (* [src*n + dst]: cseq -> unacked payload.  Flat per-edge tables
         with int keys: no tuple-key allocation (or tuple hashing) on
         the per-frame hot path. *)
  delivered_seqs : (int, unit) Hashtbl.t array;
      (* [src*n + dst]: cseqs already delivered at dst, above the
         watermark *)
  dedup_floor : int array;
      (* [src*n + dst]: every cseq below this is known delivered.
         Delivered sequence numbers are near-contiguous (holes only
         while frames are in flight), so {!gc_dedup} periodically
         folds the contiguous prefix of the set into this watermark —
         the representation endurance runs need to keep receiver-side
         dedup state bounded.  Semantics are identical to the plain
         set: (cseq < floor) ∨ (cseq ∈ set) ⟺ already delivered. *)
  handlers : 'a Network.handler option array;
  incarnations : int array;
      (* sender-side incarnation per process: Data frames are stamped at
         send time; a frame stamped by a superseded incarnation is
         quarantined at delivery (acked so its zombie timer dies, never
         handed to the handler) *)
  generations : int array;
      (* sender-side slot occupancy generation: the second staleness
         coordinate.  When a retired slot is recycled, frames stamped by
         the previous occupant (a lower generation) are quarantined the
         same way — the retransmit timer of a dead logical process must
         never speak for its successor *)
  probes : probes;
  mutable payloads_sent : int;
  mutable payloads_delivered : int;
  mutable retransmissions : int;
  mutable duplicates_discarded : int;
  mutable aborted_payloads : int;
  mutable corrupt_dropped : int;
  mutable stale_quarantined : int;
}

let edge t ~src ~dst = (src * t.n) + dst
let seen_set t ~src ~dst = t.delivered_seqs.(edge t ~src ~dst)

(* receive a wire frame at [dst] *)
let on_frame t dst ~src ~at frame =
  match frame with
  | Ack { cseq; sum } -> (
      if sum <> ack_sum ~cseq then begin
        (* corrupt ack: drop it; the sender keeps retransmitting, the
           receiver re-acks the duplicate, and the channel heals *)
        t.corrupt_dropped <- t.corrupt_dropped + 1;
        Metrics.incr t.probes.p_corrupt
      end
      else
        (* the ack travels dst->src, so here [dst] is the original
           sender and [src] the original receiver *)
        match Hashtbl.find_opt t.outstanding.(edge t ~src:dst ~dst:src) cseq with
        | Some p -> p.acked <- true
        | None -> () (* duplicate ack for an already-settled payload *))
  | Data { cseq; inc; gen; sum; payload } ->
      if sum <> data_sum ~cseq ~inc ~gen payload then begin
        (* verify-on-receive: a corrupt frame is dropped uncounted by
           the dedup tables and NOT acknowledged — the retransmission
           timer re-sends an intact copy, so reliability is preserved *)
        t.corrupt_dropped <- t.corrupt_dropped + 1;
        Metrics.incr t.probes.p_corrupt
      end
      else if inc < t.incarnations.(src) || gen < t.generations.(src)
      then begin
        (* stale identity: the frame was sent by a previous life of
           [src] — an earlier incarnation of the same process, or (a
           lower generation) a previous occupant of a recycled slot.
           Quarantine it: acknowledge (so the zombie pre-crash timer
           stops firing) but never hand the payload to the protocol —
           the durable writes of the old identity reach the group via
           anti-entropy / the adoption snapshot instead. *)
        Network.send t.network ~src:dst ~dst:src (Ack { cseq; sum = ack_sum ~cseq });
        t.stale_quarantined <- t.stale_quarantined + 1;
        Metrics.incr t.probes.p_stale
      end
      else begin
        (* always (re-)acknowledge: the previous ack may have been lost *)
        Network.send t.network ~src:dst ~dst:src (Ack { cseq; sum = ack_sum ~cseq });
        let seen = seen_set t ~src ~dst in
        if cseq < t.dedup_floor.(edge t ~src ~dst) || Hashtbl.mem seen cseq
        then begin
          t.duplicates_discarded <- t.duplicates_discarded + 1;
          Metrics.incr t.probes.p_dedup_hits
        end
        else begin
          Hashtbl.add seen cseq ();
          t.payloads_delivered <- t.payloads_delivered + 1;
          match t.handlers.(dst) with
          | Some h -> h ~src ~at payload
          | None ->
              failwith
                (Printf.sprintf
                   "Reliable_channel: delivery to process %d without handler"
                   dst)
        end
      end

let create ~engine ~network ?(retransmit_after = 50.) ?(backoff = 2.)
    ?backoff_cap ?(jitter = 0.1) ?rng ?(metrics = Metrics.null ()) () =
  if retransmit_after <= 0. then
    invalid_arg "Reliable_channel.create: retransmit_after must be positive";
  if backoff < 1. then
    invalid_arg "Reliable_channel.create: backoff must be >= 1";
  if jitter < 0. || jitter >= 1. then
    invalid_arg "Reliable_channel.create: jitter must be in [0,1)";
  let backoff_cap =
    match backoff_cap with
    | Some c ->
        if c < retransmit_after then
          invalid_arg
            "Reliable_channel.create: backoff_cap below retransmit_after";
        c
    | None -> 32. *. retransmit_after
  in
  let n = Network.n network in
  let t =
    {
      engine;
      network;
      retransmit_after;
      backoff;
      backoff_cap;
      jitter;
      (* a dedicated split stream: jitter draws must not perturb the
         network's per-channel latency streams *)
      rng = Option.map (fun r -> Rng.split r) rng;
      n;
      next_seq = Array.init n (fun _ -> Array.make n 0);
      outstanding = Array.init (n * n) (fun _ -> Hashtbl.create 16);
      delivered_seqs = Array.init (n * n) (fun _ -> Hashtbl.create 64);
      dedup_floor = Array.make (n * n) 0;
      handlers = Array.make n None;
      incarnations = Array.make n 0;
      generations = Array.make n 0;
      probes = probes metrics;
      payloads_sent = 0;
      payloads_delivered = 0;
      retransmissions = 0;
      duplicates_discarded = 0;
      aborted_payloads = 0;
      corrupt_dropped = 0;
      stale_quarantined = 0;
    }
  in
  for dst = 0 to n - 1 do
    Network.set_handler network dst (fun ~src ~at frame ->
        on_frame t dst ~src ~at frame)
  done;
  t

let set_handler t i h =
  if i < 0 || i >= t.n then
    invalid_arg "Reliable_channel.set_handler: process id out of range";
  t.handlers.(i) <- Some h

(* The interval before retransmission number [k+1] (k = retransmissions
   already performed): capped exponential, jittered from the second
   retransmission on.  The very first timeout is exactly
   [retransmit_after], unjittered, so runs that never retransmit — or
   retransmit once — keep the seed timing. *)
let interval t ~attempts =
  if attempts = 0 then t.retransmit_after
  else begin
    let base =
      Float.min t.backoff_cap
        (t.retransmit_after *. (t.backoff ** float_of_int attempts))
    in
    match t.rng with
    | None -> base
    | Some rng ->
        (* symmetric jitter in [-jitter/2, +jitter/2) of the interval *)
        base *. (1. +. (t.jitter *. (Rng.float rng -. 0.5)))
  end

let send t ~src ~dst payload =
  if src = dst then
    invalid_arg "Reliable_channel.send: self-sends are not modelled";
  let cseq = t.next_seq.(src).(dst) in
  t.next_seq.(src).(dst) <- cseq + 1;
  t.payloads_sent <- t.payloads_sent + 1;
  Metrics.incr t.probes.p_payloads;
  let inc = t.incarnations.(src) in
  let gen = t.generations.(src) in
  let p = { payload; inc; gen; acked = false; aborted = false; attempts = 0 } in
  let pending = t.outstanding.(edge t ~src ~dst) in
  Hashtbl.replace pending cseq p;
  let transmit () =
    (* the frame keeps its send-time (incarnation, generation) stamp
       across retransmissions: a retransmit after the sender's rejoin —
       or after its slot was recycled — is exactly the stale traffic
       quarantine must catch *)
    Network.send t.network ~src ~dst
      (Data
         {
           cseq;
           inc = p.inc;
           gen = p.gen;
           sum = data_sum ~cseq ~inc:p.inc ~gen:p.gen p.payload;
           payload = p.payload;
         })
  in
  let rec arm_timer () =
    Engine.schedule_after t.engine (interval t ~attempts:p.attempts)
      (fun () ->
        if p.aborted then ()
        else if not p.acked then begin
          t.retransmissions <- t.retransmissions + 1;
          Metrics.incr t.probes.p_retransmissions;
          p.attempts <- p.attempts + 1;
          Metrics.observe t.probes.p_backoff_level (float_of_int p.attempts);
          transmit ();
          arm_timer ()
        end
        else Hashtbl.remove pending cseq)
  in
  transmit ();
  arm_timer ()

let broadcast t ~src payload =
  for dst = 0 to t.n - 1 do
    if dst <> src then send t ~src ~dst payload
  done

let abort_peer t ~peer =
  if peer < 0 || peer >= t.n then
    invalid_arg "Reliable_channel.abort_peer: process id out of range";
  (* stop retransmitting to the crashed peer: every undelivered copy of
     these payloads is lost, recovery must fetch the content some other
     way (anti-entropy) *)
  let count = ref 0 in
  for src = 0 to t.n - 1 do
    let pending = t.outstanding.(edge t ~src ~dst:peer) in
    let doomed =
      Hashtbl.fold
        (fun cseq p acc ->
          if (not p.acked) && not p.aborted then (cseq, p) :: acc else acc)
        pending []
    in
    List.iter
      (fun (cseq, p) ->
        p.aborted <- true;
        Hashtbl.remove pending cseq)
      doomed;
    count := !count + List.length doomed
  done;
  let count = !count in
  t.aborted_payloads <- t.aborted_payloads + count;
  Metrics.add t.probes.p_aborted count;
  (* the peer restarts with empty volatile state: its dedup tables are
     gone, so sequence numbers delivered to the dead incarnation must
     not suppress deliveries to the new one *)
  for src = 0 to t.n - 1 do
    Hashtbl.reset t.delivered_seqs.(edge t ~src ~dst:peer);
    t.dedup_floor.(edge t ~src ~dst:peer) <- 0
  done;
  count

let abort_sender t ~peer =
  if peer < 0 || peer >= t.n then
    invalid_arg "Reliable_channel.abort_sender: process id out of range";
  (* stop retransmitting the payloads [peer] itself originated: every
     ack addressed to a crash-stopped process is dropped by the network,
     so without this its pre-crash send queue would retransmit forever.
     Only call this for a peer that never restarts — for a recovering
     peer the armed timers are its durable send queue. *)
  let count = ref 0 in
  for dst = 0 to t.n - 1 do
    let pending = t.outstanding.(edge t ~src:peer ~dst) in
    let doomed =
      Hashtbl.fold
        (fun cseq p acc ->
          if (not p.acked) && not p.aborted then (cseq, p) :: acc else acc)
        pending []
    in
    List.iter
      (fun (cseq, p) ->
        p.aborted <- true;
        Hashtbl.remove pending cseq)
      doomed;
    count := !count + List.length doomed
  done;
  let count = !count in
  t.aborted_payloads <- t.aborted_payloads + count;
  Metrics.add t.probes.p_aborted count;
  count

(* Fold each edge's contiguous prefix of delivered sequence numbers
   into its watermark.  Pure representation change (see [dedup_floor]):
   membership in the delivered set is preserved exactly, so delivery
   decisions — and therefore traces — are untouched; only the retained
   hashtable entries shrink.  O(delivered) worst case, O(new) amortized
   when called periodically. *)
let gc_dedup t =
  let dropped = ref 0 in
  for e = 0 to (t.n * t.n) - 1 do
    let seen = t.delivered_seqs.(e) in
    let w = ref t.dedup_floor.(e) in
    while Hashtbl.mem seen !w do
      Hashtbl.remove seen !w;
      incr dropped;
      incr w
    done;
    t.dedup_floor.(e) <- !w
  done;
  !dropped

(* retained receiver-side dedup entries (above the watermarks) — the
   bounded-state monitor of endurance runs reads this *)
let dedup_entries t =
  Array.fold_left (fun acc s -> acc + Hashtbl.length s) 0 t.delivered_seqs

let bump_incarnation t p =
  if p < 0 || p >= t.n then
    invalid_arg "Reliable_channel.bump_incarnation: process id out of range";
  t.incarnations.(p) <- t.incarnations.(p) + 1

let incarnation t p =
  if p < 0 || p >= t.n then
    invalid_arg "Reliable_channel.incarnation: process id out of range";
  t.incarnations.(p)

let bump_generation t p =
  if p < 0 || p >= t.n then
    invalid_arg "Reliable_channel.bump_generation: process id out of range";
  t.generations.(p) <- t.generations.(p) + 1

let generation t p =
  if p < 0 || p >= t.n then
    invalid_arg "Reliable_channel.generation: process id out of range";
  t.generations.(p)

let payloads_sent t = t.payloads_sent
let payloads_delivered t = t.payloads_delivered
let retransmissions t = t.retransmissions
let duplicates_discarded t = t.duplicates_discarded
let aborted t = t.aborted_payloads

let corrupt_dropped t = t.corrupt_dropped
let stale_quarantined t = t.stale_quarantined

let unacked t =
  Array.fold_left
    (fun acc pending ->
      Hashtbl.fold
        (fun _ p acc -> if p.acked then acc else acc + 1)
        pending acc)
    0 t.outstanding

let unacked_from t ~peer =
  if peer < 0 || peer >= t.n then
    invalid_arg "Reliable_channel.unacked_from: process id out of range";
  let acc = ref 0 in
  for dst = 0 to t.n - 1 do
    Hashtbl.iter
      (fun _ p -> if (not p.acked) && not p.aborted then incr acc)
      t.outstanding.(edge t ~src:peer ~dst)
  done;
  !acc
