(** Reliable exactly-once channels over a faulty network.

    The paper's system model (§3.1) assumes channels on which "each
    message sent by a process is eventually received exactly once and
    no spurious message can ever be delivered". This module {e builds}
    that abstraction instead of assuming it: over a {!Network} that may
    drop and duplicate (but not corrupt or forge) messages, it layers

    - per-ordered-pair sequence numbers,
    - positive acknowledgments with timeout-based retransmission, and
    - receiver-side deduplication,

    delivering each payload to the destination handler exactly once
    (not necessarily in send order — the protocols above tolerate
    reordering by design).

    Retransmission intervals follow {b capped exponential backoff}: the
    first timeout is exactly [retransmit_after] (so runs that never
    retransmit keep the seed timing), each subsequent interval is
    multiplied by [backoff] up to [backoff_cap], and — when an [rng] is
    supplied — intervals after the first retransmission are perturbed
    by symmetric [jitter] drawn from a dedicated split stream. During a
    long partition this keeps a sender from flooding the healed link
    with synchronized retransmission storms.

    Retransmission stops once the ack arrives, or when the destination
    is known to have crashed ({!abort_peer}); with any drop probability
    below 1 every message to a live peer is eventually acknowledged, so
    simulations still quiesce.

    The wire type is {!('a) frame}; create the underlying network with
    that payload type. *)

type 'a frame
(** Data or acknowledgment, as placed on the wire. *)

type 'a t

val create :
  engine:Engine.t ->
  network:'a frame Network.t ->
  ?retransmit_after:float ->
  ?backoff:float ->
  ?backoff_cap:float ->
  ?jitter:float ->
  ?rng:Rng.t ->
  ?metrics:Dsm_obs.Metrics.t ->
  unit ->
  'a t
(** [?metrics] (default: the null registry) receives [chan_payloads],
    [chan_retransmissions], [chan_dedup_hits], [chan_aborted] and the
    [chan_backoff_level] histogram (the attempt number of every
    retransmission — mass above level 1 means exponential backoff
    engaged). Probes are pure observation.

    [retransmit_after] (default [50.] time units) is the first ack
    timeout; pick it a few times the mean channel latency. [backoff]
    (default [2.]) multiplies the interval on every retransmission;
    [backoff_cap] (default [32 * retransmit_after]) bounds it. [jitter]
    (default [0.1]) is the maximal fractional perturbation of intervals
    after the first retransmission; it only applies when [rng] is given
    (a split of it is taken, so the caller's stream advances once).
    @raise Invalid_argument if [retransmit_after <= 0], [backoff < 1],
    [backoff_cap < retransmit_after] or [jitter] outside [0,1). *)

val set_handler : 'a t -> int -> ('a Network.handler) -> unit
(** Exactly-once delivery handler for a process. *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
val broadcast : 'a t -> src:int -> 'a -> unit

val abort_peer : 'a t -> peer:int -> int
(** [abort_peer t ~peer] is the crash hook: stops retransmitting every
    unacknowledged payload destined to [peer] (returning how many were
    abandoned — their content must reach the peer some other way, e.g.
    anti-entropy catch-up after recovery) and forgets the receiver-side
    deduplication state of [peer], whose volatile tables died with it —
    sequence numbers delivered to the dead incarnation must not
    suppress deliveries to the recovered one.
    @raise Invalid_argument on an out-of-range process id. *)

val abort_sender : 'a t -> peer:int -> int
(** [abort_sender t ~peer] is the complementary crash hook for a peer
    that is down {e for good}: it stops retransmitting every
    unacknowledged payload that [peer] itself originated before
    crashing, returning how many were abandoned. Acknowledgments
    addressed to a crashed process are silently dropped by the network,
    so without this the dead sender's armed timers would fire forever
    and the simulation could never quiesce. Do {e not} call it for a
    peer that later restarts — its in-flight timers are precisely the
    durable send queue that finishes the job after recovery.
    @raise Invalid_argument on an out-of-range process id. *)

(** {1 Statistics} *)

val payloads_sent : 'a t -> int
(** Distinct payloads submitted (not counting retransmissions). *)

val payloads_delivered : 'a t -> int
(** Exactly-once deliveries performed. *)

val retransmissions : 'a t -> int
val duplicates_discarded : 'a t -> int

val aborted : 'a t -> int
(** Payloads abandoned by {!abort_peer} or {!abort_sender},
    cumulative. *)

val unacked : 'a t -> int
(** Payloads still awaiting acknowledgment (aborted ones excluded). *)
