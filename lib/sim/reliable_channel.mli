(** Reliable exactly-once channels over a faulty network.

    The paper's system model (§3.1) assumes channels on which "each
    message sent by a process is eventually received exactly once and
    no spurious message can ever be delivered". This module {e builds}
    that abstraction instead of assuming it: over a {!Network} that may
    drop, duplicate and {e corrupt} (but not forge) messages, it layers

    - per-ordered-pair sequence numbers,
    - payload checksums, verified on receive — corrupt frames are
      dropped and counted ([chan_corrupt_total]), and because a dropped
      data frame is never acknowledged, retransmission heals the loss,
    - positive acknowledgments with timeout-based retransmission,
    - receiver-side deduplication, and
    - sender-incarnation stamps: every data frame carries the
      incarnation of its sender at the {e original} send. After a
      crash-rejoin bumps the incarnation ({!bump_incarnation}),
      retransmissions of pre-crash frames are {e quarantined} at the
      receiver — acknowledged, so the zombie timer stops, but never
      delivered ([chan_stale_total]); the rejoined process's durable
      writes reach the group through anti-entropy instead.

    delivering each payload to the destination handler exactly once
    (not necessarily in send order — the protocols above tolerate
    reordering by design).

    Retransmission intervals follow {b capped exponential backoff}: the
    first timeout is exactly [retransmit_after] (so runs that never
    retransmit keep the seed timing), each subsequent interval is
    multiplied by [backoff] up to [backoff_cap], and — when an [rng] is
    supplied — intervals after the first retransmission are perturbed
    by symmetric [jitter] drawn from a dedicated split stream. During a
    long partition this keeps a sender from flooding the healed link
    with synchronized retransmission storms.

    Retransmission stops once the ack arrives, or when the destination
    is known to have crashed ({!abort_peer}); with any drop probability
    below 1 every message to a live peer is eventually acknowledged, so
    simulations still quiesce.

    The wire type is {!('a) frame}; create the underlying network with
    that payload type. *)

type 'a frame
(** Data or acknowledgment, as placed on the wire; both carry a
    checksum, data frames also the sender's incarnation stamp. *)

val corrupt_frame : 'a frame -> 'a frame
(** The corruption model to pass to {!Network.create} as [~mangle]: any
    in-flight bit flip invalidates the checksum, which this models by
    flipping the checksum field itself, so verify-on-receive detects it
    exactly. *)

val wire_frame :
  ('a -> Dsm_obs.Wire.frame) -> 'a frame -> Dsm_obs.Wire.frame
(** [wire_frame inner] lifts a payload measurer to channel frames for
    {!Network.create}'s [?measure]: data frames cost the payload's
    shape plus the envelope's three scalars (cseq, incarnation,
    checksum); acks are two scalars under their own ["ack"] cause. *)

type 'a t

val create :
  engine:Engine.t ->
  network:'a frame Network.t ->
  ?retransmit_after:float ->
  ?backoff:float ->
  ?backoff_cap:float ->
  ?jitter:float ->
  ?rng:Rng.t ->
  ?metrics:Dsm_obs.Metrics.t ->
  unit ->
  'a t
(** [?metrics] (default: the null registry) receives [chan_payloads],
    [chan_retransmissions], [chan_dedup_hits], [chan_aborted],
    [chan_corrupt_total], [chan_stale_total] and the
    [chan_backoff_level] histogram (the attempt number of every
    retransmission — mass above level 1 means exponential backoff
    engaged). Probes are pure observation.

    [retransmit_after] (default [50.] time units) is the first ack
    timeout; pick it a few times the mean channel latency. [backoff]
    (default [2.]) multiplies the interval on every retransmission;
    [backoff_cap] (default [32 * retransmit_after]) bounds it. [jitter]
    (default [0.1]) is the maximal fractional perturbation of intervals
    after the first retransmission; it only applies when [rng] is given
    (a split of it is taken, so the caller's stream advances once).
    @raise Invalid_argument if [retransmit_after <= 0], [backoff < 1],
    [backoff_cap < retransmit_after] or [jitter] outside [0,1). *)

val set_handler : 'a t -> int -> ('a Network.handler) -> unit
(** Exactly-once delivery handler for a process. *)

val send : 'a t -> src:int -> dst:int -> 'a -> unit
val broadcast : 'a t -> src:int -> 'a -> unit

val abort_peer : 'a t -> peer:int -> int
(** [abort_peer t ~peer] is the crash hook: stops retransmitting every
    unacknowledged payload destined to [peer] (returning how many were
    abandoned — their content must reach the peer some other way, e.g.
    anti-entropy catch-up after recovery) and forgets the receiver-side
    deduplication state of [peer], whose volatile tables died with it —
    sequence numbers delivered to the dead incarnation must not
    suppress deliveries to the recovered one.
    @raise Invalid_argument on an out-of-range process id. *)

val abort_sender : 'a t -> peer:int -> int
(** [abort_sender t ~peer] is the complementary crash hook for a peer
    that is down {e for good}: it stops retransmitting every
    unacknowledged payload that [peer] itself originated before
    crashing, returning how many were abandoned. Acknowledgments
    addressed to a crashed process are silently dropped by the network,
    so without this the dead sender's armed timers would fire forever
    and the simulation could never quiesce. Do {e not} call it for a
    peer that later restarts — its in-flight timers are precisely the
    durable send queue that finishes the job after recovery.
    @raise Invalid_argument on an out-of-range process id. *)

(** {1 Incarnations} *)

val bump_incarnation : 'a t -> int -> unit
(** Call when a process rejoins after a crash: frames it sent in its
    previous life (including retransmissions of them) become stale and
    are quarantined at every receiver. PR 2's plain crash/recover cycle
    does not bump, so static-membership campaigns are unchanged. *)

val incarnation : 'a t -> int -> int

val bump_generation : 'a t -> int -> unit
(** Call when a retired slot is recycled to a {e new} logical process
    (slot reuse): frames stamped by the previous occupant — including
    retransmissions from its still-armed timers — become stale and are
    quarantined at every receiver, exactly like a superseded
    incarnation. Generation-0 slots behave (and checksum) exactly as
    before the slot-reuse layer. *)

val generation : 'a t -> int -> int

(** {1 Retired-state reclamation} *)

val gc_dedup : 'a t -> int
(** Folds each edge's contiguous prefix of delivered sequence numbers
    into a per-edge watermark, dropping the individual records — the
    compaction endurance runs call at their convergence barriers to
    keep receiver-side dedup state bounded over unbounded lifetimes.
    A pure representation change: whether any given sequence number
    counts as already delivered is unchanged, so delivery behaviour
    and traces are byte-identical with or without the call. Returns
    the number of records folded away. *)

val dedup_entries : 'a t -> int
(** Receiver-side dedup records currently retained above the
    watermarks (the quantity {!gc_dedup} bounds). *)

(** {1 Statistics} *)

val payloads_sent : 'a t -> int
(** Distinct payloads submitted (not counting retransmissions). *)

val payloads_delivered : 'a t -> int
(** Exactly-once deliveries performed. *)

val retransmissions : 'a t -> int
val duplicates_discarded : 'a t -> int

val aborted : 'a t -> int
(** Payloads abandoned by {!abort_peer} or {!abort_sender},
    cumulative. *)

val unacked : 'a t -> int
(** Payloads still awaiting acknowledgment (aborted ones excluded). *)

val unacked_from : 'a t -> peer:int -> int
(** Payloads originated by [peer] still awaiting acknowledgment — the
    graceful-leave flush condition: a departing process waits until
    this reaches zero before leaving the view. *)

val corrupt_dropped : 'a t -> int
(** Frames that failed checksum verification (dropped, healed by
    retransmission). *)

val stale_quarantined : 'a t -> int
(** Data frames from a superseded sender incarnation (acked but never
    delivered). *)
