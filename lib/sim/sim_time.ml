type t = float

let zero = 0.

let[@inline] of_float f =
  if not (Float.is_finite f) || f < 0. then
    invalid_arg "Sim_time.of_float: time must be finite and non-negative";
  f

let[@inline] to_float t = t

let[@inline] add t d =
  if not (Float.is_finite d) || d < 0. then
    invalid_arg "Sim_time.add: duration must be finite and non-negative";
  t +. d

let diff later earlier = later -. earlier
let compare = Float.compare
let equal = Float.equal
let ( <= ) a b = Float.compare a b <= 0
let ( < ) a b = Float.compare a b < 0
let max = Float.max
let pp ppf t = Format.fprintf ppf "%.3f" t
let to_string t = Format.asprintf "%a" pp t
