type 'a t = {
  mutable data : 'a option array;
  mutable len : int;
  mutable start : int;  (* ring head; always 0 while unbounded *)
  limit : int option;  (* ring capacity; None = grow without bound *)
  mutable dropped : int;  (* events evicted by the ring *)
}

let create ?(initial_capacity = 64) ?capacity_limit () =
  (match capacity_limit with
  | Some c when c <= 0 ->
      invalid_arg "Trace.create: capacity_limit must be positive"
  | _ -> ());
  let cap =
    match capacity_limit with
    | Some c -> min (max 1 initial_capacity) c
    | None -> max 1 initial_capacity
  in
  { data = Array.make cap None; len = 0; start = 0; limit = capacity_limit; dropped = 0 }

let grow t =
  let cap = Array.length t.data in
  let target =
    match t.limit with Some c -> min (2 * cap) c | None -> 2 * cap
  in
  let data = Array.make target None in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let record t x =
  let cap = Array.length t.data in
  if t.len = cap then
    match t.limit with
    | Some c when cap = c ->
        (* full ring: overwrite the oldest slot and advance the head *)
        t.data.(t.start) <- Some x;
        t.start <- (t.start + 1) mod c;
        t.dropped <- t.dropped + 1
    | _ ->
        grow t;
        t.data.(t.len) <- Some x;
        t.len <- t.len + 1
  else begin
    t.data.(t.len) <- Some x;
    t.len <- t.len + 1
  end

let length t = t.len
let dropped t = t.dropped
let capacity_limit t = t.limit

let unsafe_get t i =
  let i =
    if t.start = 0 then i else (t.start + i) mod Array.length t.data
  in
  match t.data.(i) with
  | Some x -> x
  | None -> assert false (* slots below [len] are always filled *)

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index out of bounds";
  unsafe_get t i

let to_list t = List.init t.len (fun i -> unsafe_get t i)

let iter f t =
  for i = 0 to t.len - 1 do
    f (unsafe_get t i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i (unsafe_get t i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (unsafe_get t i)
  done;
  !acc

let filter p t =
  fold (fun acc x -> if p x then x :: acc else acc) [] t |> List.rev

let find_opt p t =
  let rec go i =
    if i = t.len then None
    else
      let x = unsafe_get t i in
      if p x then Some x else go (i + 1)
  in
  go 0

let find_index p t =
  let rec go i =
    if i = t.len then None
    else if p (unsafe_get t i) then Some i
    else go (i + 1)
  in
  go 0

let count p t = fold (fun acc x -> if p x then acc + 1 else acc) 0 t

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.len <- 0;
  t.start <- 0
