(** Append-only event log.

    Simulation runs record their observable events (send, receipt,
    apply, return — the event vocabulary of the paper's §3.2) into a
    trace; the checker and the experiment reports consume the trace
    after the run. The log is generic: the runtime layer instantiates it
    with its own event record. Amortized O(1) append, O(1) random
    access.

    With [?capacity_limit] the log becomes a bounded ring: once full,
    each append evicts the oldest retained event (counted by
    {!dropped}). Indices always address the {e retained} window, oldest
    retained first — long fault campaigns can keep a live tail for
    monitoring without growing memory without bound. Post-hoc analyses
    (checker, span reconstruction) want the default unbounded mode. *)

type 'a t

val create : ?initial_capacity:int -> ?capacity_limit:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity_limit <= 0]. *)

val record : 'a t -> 'a -> unit
val length : 'a t -> int
(** Retained events — never exceeds the capacity limit. *)

val dropped : 'a t -> int
(** Events evicted by the ring so far (0 in unbounded mode). *)

val capacity_limit : 'a t -> int option

val get : 'a t -> int -> 'a
(** [get t i] is the [i]-th recorded event (0-based, recording order).
    @raise Invalid_argument if out of bounds. *)

val to_list : 'a t -> 'a list
(** Recording order. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val filter : ('a -> bool) -> 'a t -> 'a list
val find_opt : ('a -> bool) -> 'a t -> 'a option
val find_index : ('a -> bool) -> 'a t -> int option
val count : ('a -> bool) -> 'a t -> int
val clear : 'a t -> unit
