type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable under : int;
  mutable over : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: need lo < hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  { lo; hi; counts = Array.make bins 0; under = 0; over = 0; total = 0 }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let bins = Array.length t.counts in
    let w = (t.hi -. t.lo) /. float_of_int bins in
    let i = Stdlib.min (bins - 1) (int_of_float ((x -. t.lo) /. w)) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add_all t l = List.iter (add t) l

let of_samples ?(bins = 20) samples =
  match samples with
  | [] -> invalid_arg "Histogram.of_samples: empty sample"
  | x :: rest ->
      let lo = List.fold_left Float.min x rest in
      let hi = List.fold_left Float.max x rest in
      let hi = if hi > lo then hi +. ((hi -. lo) *. 1e-9) else lo +. 1. in
      let t = create ~lo ~hi ~bins in
      add_all t samples;
      t

let total t = t.total
let bin_count t = Array.length t.counts

let bin_range t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bin_range: bin out of range";
  let w = (t.hi -. t.lo) /. float_of_int (Array.length t.counts) in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

let bin_value t i =
  if i < 0 || i >= Array.length t.counts then
    invalid_arg "Histogram.bin_value: bin out of range";
  t.counts.(i)

let underflow t = t.under
let overflow t = t.over

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.under <- 0;
  t.over <- 0;
  t.total <- 0

let render ?(width = 40) t =
  let buf = Buffer.create 256 in
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      let lo, hi = bin_range t i in
      let bar = c * width / peak in
      Buffer.add_string buf
        (Printf.sprintf "[%10.3g..%10.3g) %-*s %d\n" lo hi width
           (String.concat "" (List.init bar (fun _ -> "#")))
           c))
    t.counts;
  if t.under > 0 then
    Buffer.add_string buf (Printf.sprintf "underflow: %d\n" t.under);
  if t.over > 0 then
    Buffer.add_string buf (Printf.sprintf "overflow: %d\n" t.over);
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
