(** Fixed-bin histograms with ASCII rendering.

    The experiment harness prints apply-latency and buffer-occupancy
    distributions as terminal histograms; this module owns the binning
    and the rendering. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Uniform bins over [\[lo, hi)]; samples outside the range land in
    two dedicated underflow/overflow counters.
    @raise Invalid_argument unless [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
val add_all : t -> float list -> unit

val of_samples : ?bins:int -> float list -> t
(** Range taken from the samples ([bins] defaults to 20; a tiny epsilon
    is added on the right so the maximum lands in the last bin).
    @raise Invalid_argument on an empty list. *)

val total : t -> int
val bin_count : t -> int
val bin_range : t -> int -> float * float
val bin_value : t -> int -> int
val underflow : t -> int
val overflow : t -> int

val reset : t -> unit
(** Zero every bin and the under/overflow counters in place, keeping
    the configured range — lets bench loops reuse one histogram across
    iterations. *)

val render : ?width:int -> t -> string
(** Multi-line ASCII rendering, one row per bin:
    [\[ lo.. hi) ████████ count]. *)

val pp : Format.formatter -> t -> unit
