(* Minimal JSON reader/writer — the container bakes no JSON library in.

   Extracted from the nemesis plan loader so every artifact consumer
   (bench diff, report, nemesis replay) shares one parser instead of
   each hand-rolling its own. The reader accepts the JSON our emitters
   produce plus ordinary interchange documents; \u escapes outside
   ASCII degrade to '?' rather than pulling in a unicode table. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
          incr pos;
          Buffer.contents b
      | '\\' ->
          incr pos;
          if !pos >= n then fail "bad escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "bad unicode escape";
              (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
              | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad unicode escape");
              pos := !pos + 4
          | _ -> fail "bad escape");
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let parse_result s = try Ok (parse s) with Bad msg -> Error msg

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* shortest float string that round-trips exactly *)
let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f -> Buffer.add_string b (number f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_obj = function Obj fields -> Some fields | _ -> None
