(** Minimal JSON reader/writer shared by every artifact consumer
    (nemesis plans, [bench diff], [dsm-sim report]). The container
    bakes in no JSON library, so this is deliberately small: enough to
    round-trip the documents our own emitters produce. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string
(** Raised by {!parse} with a human-readable position message. *)

val parse : string -> t
(** Strict parse of a complete document; trailing non-whitespace input
    is an error. [\u] escapes outside ASCII degrade to ['?'].
    @raise Bad on malformed input. *)

val parse_result : string -> (t, string) result

val escape : string -> string
(** Escape a string for embedding between double quotes. *)

val number : float -> string
(** Integral floats print without a fractional part; other values use
    the shortest representation that round-trips exactly. *)

val to_string : t -> string
(** Compact single-line serialization (keys in listed order). *)

(** Accessors return [None] on shape mismatch so callers can thread
    lookups with [Option.bind]. *)

val member : string -> t -> t option
val to_num : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
