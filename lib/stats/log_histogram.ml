(* Log-bucketed quantile sketch.

   Buckets grow geometrically: bucket [i >= 1] covers
   (base * gamma^(i-1), base * gamma^i], bucket 0 holds everything at or
   below [base] (including zero and negatives). A quantile query walks
   the cumulative counts and answers with the upper edge of the bucket
   the rank falls in, clamped to the exact observed maximum, so for any
   quantile [q] the estimate [est] and the exact order statistic
   [exact] satisfy

     exact <= est <= max base (exact * gamma)

   — a relative error bounded by [gamma - 1] once values clear the
   [base] resolution floor. The default gamma, 2^(1/8), bounds the
   error at ~9%.

   Memory is one int per occupied decade-slice: the bucket array grows
   on demand (doubling) and never shrinks; [reset] zeroes it in place
   so a reused sketch allocates nothing per iteration. *)

type t = {
  gamma : float;
  inv_log_gamma : float;  (* 1 / ln gamma, hoisted out of [add] *)
  base : float;
  mutable counts : int array;  (* counts.(i) = bucket i, 0 = floor bucket *)
  mutable used : int;  (* highest occupied bucket index + 1 *)
  mutable total : int;
  mutable sum : float;
  mutable vmax : float;
}

let default_gamma = 1.0905077326652577  (* 2^(1/8) *)

let create ?(gamma = default_gamma) ?(base = 1e-9) () =
  if not (gamma > 1. && Float.is_finite gamma) then
    invalid_arg "Log_histogram.create: gamma must be finite and > 1";
  if not (base > 0. && Float.is_finite base) then
    invalid_arg "Log_histogram.create: base must be finite and positive";
  {
    gamma;
    inv_log_gamma = 1. /. log gamma;
    base;
    counts = Array.make 32 0;
    used = 0;
    total = 0;
    sum = 0.;
    vmax = neg_infinity;
  }

let gamma t = t.gamma
let base t = t.base

let bucket_of t v =
  if v <= t.base then 0
  else
    (* smallest i with v <= base * gamma^i *)
    let i = int_of_float (ceil (log (v /. t.base) *. t.inv_log_gamma)) in
    if i < 1 then 1 else i

let ensure t i =
  let cap = Array.length t.counts in
  if i >= cap then begin
    let cap' = max (i + 1) (2 * cap) in
    let counts = Array.make cap' 0 in
    Array.blit t.counts 0 counts 0 cap;
    t.counts <- counts
  end

let add t v =
  if Float.is_finite v then begin
    let i = bucket_of t v in
    ensure t i;
    t.counts.(i) <- t.counts.(i) + 1;
    if i + 1 > t.used then t.used <- i + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. v;
    if v > t.vmax then t.vmax <- v
  end

let count t = t.total
let sum t = t.sum
let max_value t = if t.total = 0 then 0. else t.vmax
let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total

(* upper edge of bucket [i] *)
let edge t i = if i = 0 then t.base else t.base *. (t.gamma ** float_of_int i)

let quantile t q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Log_histogram.quantile: q must be in [0,1]";
  if t.total = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int t.total)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let est = ref t.vmax in
    let cum = ref 0 in
    (try
       for i = 0 to t.used - 1 do
         cum := !cum + t.counts.(i);
         if !cum >= rank then begin
           est := edge t i;
           raise Exit
         end
       done
     with Exit -> ());
    (* the exact order statistic is an observed value, hence <= vmax;
       clamping keeps the upper bound tight at the distribution's tail
       (and makes quantile t 1. exact) *)
    if !est > t.vmax then t.vmax else !est
  end

let reset t =
  Array.fill t.counts 0 t.used 0;
  t.used <- 0;
  t.total <- 0;
  t.sum <- 0.;
  t.vmax <- neg_infinity
