(** Log-bucketed quantile sketch (p50/p95/p99/max over long-tailed
    distributions).

    Fixed-range linear bins ({!Histogram}) resolve the body of a
    distribution but collapse its tail into one overflow counter;
    latency and blocked-duration tracking need the opposite trade.
    This sketch uses geometric buckets — bucket [i] covers
    [(base·gamma^(i-1), base·gamma^i]] — so a constant {e relative}
    resolution of [gamma - 1] spans any dynamic range in a handful of
    integers.

    Accuracy contract: for any [q], with [exact] the true order
    statistic (smallest observed value whose rank reaches
    [ceil (q * count)]) and [est = quantile t q],

    {[ exact <= est <= max base (exact *. gamma) ]}

    The estimate never undershoots, and overshoots by at most the
    bucket width; [quantile t 1.] is the exact maximum. The qcheck
    suite pins this bound against sorted-array quantiles. *)

type t

val default_gamma : float
(** [2^(1/8)] ≈ 1.0905 — at most ~9% relative overshoot. *)

val create : ?gamma:float -> ?base:float -> unit -> t
(** [base] (default [1e-9]) is the resolution floor: all observations
    at or below it (zero and negative included) share one bucket whose
    upper edge is [base].
    @raise Invalid_argument unless [gamma > 1] and [base > 0], both
    finite. *)

val add : t -> float -> unit
(** Non-finite observations are ignored. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val max_value : t -> float
(** Exact observed maximum; [0.] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0,1]]; [0.] when empty.
    @raise Invalid_argument if [q] is outside [[0,1]]. *)

val gamma : t -> float
val base : t -> float

val reset : t -> unit
(** Zeroes the sketch in place — no allocation, registered capacity is
    kept — so bench loops can reuse one sketch across iterations. *)
