type t = { replica : int; gen : int; seq : int }

let make_gen ~replica ~gen ~seq =
  if replica < 0 then invalid_arg "Dot.make: negative replica";
  if gen < 0 then invalid_arg "Dot.make: negative generation";
  if seq < 1 then invalid_arg "Dot.make: sequence numbers start at 1";
  { replica; gen; seq }

let make ~replica ~seq = make_gen ~replica ~gen:0 ~seq
let replica d = d.replica
let gen d = d.gen
let seq d = d.seq
let equal a b = a.replica = b.replica && a.seq = b.seq && a.gen = b.gen

let compare a b =
  let c = Int.compare a.replica b.replica in
  if c <> 0 then c
  else
    let c = Int.compare a.seq b.seq in
    if c <> 0 then c else Int.compare a.gen b.gen

(* Generation-0 dots must hash exactly as before the gen field existed:
   hashtable iteration orders (and thus some pinned traces) depend on
   it. *)
let hash d =
  let h = (d.replica * 1000003) lxor d.seq in
  if d.gen = 0 then h else h lxor (d.gen * 2654435761)

let of_clock w_co i =
  make_gen ~replica:i ~gen:(Vector_clock.gen w_co i)
    ~seq:(Vector_clock.get w_co i)

let pp ppf d =
  if d.gen = 0 then Format.fprintf ppf "w%d#%d" (d.replica + 1) d.seq
  else Format.fprintf ppf "w%d#%d@g%d" (d.replica + 1) d.seq d.gen

let to_string d = Format.asprintf "%a" pp d

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
