(** Write identities.

    A {e dot} is the triple [(replica, generation, sequence_number)]
    identifying the [seq]-th write issued by the [gen]-th occupant of
    slot [replica] (seq 1-based, matching the paper's Observation 2:
    [w] is the [k]-th write of [p_i] iff [w.Write_co[i] = k]; gen
    0-based — generation 0 is the slot's original occupant, so a
    fixed-membership run never sees a nonzero generation). Dots name
    writes independently of their payload, which is what the
    delay-accounting machinery, the causality graph and the
    writing-semantics metadata all need. *)

type t = { replica : int; gen : int; seq : int }

val make : replica:int -> seq:int -> t
(** A generation-0 dot (the slot's original occupant).
    @raise Invalid_argument if [replica < 0] or [seq < 1]. *)

val make_gen : replica:int -> gen:int -> seq:int -> t
(** [make_gen ~replica ~gen ~seq] is the dot of the [seq]-th write of
    the [gen]-th occupant of slot [replica].
    @raise Invalid_argument if [replica < 0], [gen < 0] or [seq < 1]. *)

val replica : t -> int
val gen : t -> int
val seq : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Generation-0 dots hash exactly as before generations existed, so
    hashtable iteration orders in pinned traces are unchanged. *)

val of_clock : Vector_clock.t -> int -> t
(** [of_clock w_co i] is the dot of the write whose [Write_co] vector is
    [w_co] and whose issuer is [p_i] — i.e. [(i, w_co.gen[i], w_co[i])]
    (Observation 2, extended with the entry's generation). *)

val pp : Format.formatter -> t -> unit
(** Prints as [w{replica+1}#{seq}], e.g. [w1#2] for the second write of
    process [p₁] (1-based process names, as in the paper); a nonzero
    generation appends [@g{gen}]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
