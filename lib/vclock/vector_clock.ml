(* Representation: a record holding the component array, so the vector
   can grow in place (membership joins) while every alias observes the
   new size. Components beyond a vector's physical size are implicitly
   zero: a clock taken in an n-process epoch compares correctly against
   one from a later, wider epoch, because a process that had not joined
   yet had produced no events. *)
type t = { mutable data : int array }

let create n =
  if n <= 0 then invalid_arg "Vector_clock.create: size must be positive";
  { data = Array.make n 0 }

let of_array a =
  if Array.length a = 0 then invalid_arg "Vector_clock.of_array: empty";
  Array.iter
    (fun x ->
      if x < 0 then invalid_arg "Vector_clock.of_array: negative component")
    a;
  { data = Array.copy a }

let of_list l = of_array (Array.of_list l)
let copy v = { data = Array.copy v.data }
let size v = Array.length v.data

let grow v n =
  let old = Array.length v.data in
  if n < old then invalid_arg "Vector_clock.grow: cannot shrink";
  if n > old then begin
    let data = Array.make n 0 in
    Array.blit v.data 0 data 0 old;
    v.data <- data
  end

let get v i =
  if i < 0 || i >= Array.length v.data then
    invalid_arg "Vector_clock.get: index out of bounds";
  v.data.(i)

let get0 v i =
  if i < 0 then invalid_arg "Vector_clock.get0: negative index";
  if i >= Array.length v.data then 0 else v.data.(i)

let unsafe_get v i = Array.unsafe_get v.data i

let unsafe_tick v i =
  Array.unsafe_set v.data i (Array.unsafe_get v.data i + 1)

let to_array v = Array.copy v.data
let to_list v = Array.to_list v.data
let sum v = Array.fold_left ( + ) 0 v.data

let set v i k =
  if i < 0 || i >= Array.length v.data then
    invalid_arg "Vector_clock.set: index out of bounds";
  if k < 0 then invalid_arg "Vector_clock.set: negative value";
  v.data.(i) <- k

let tick v i =
  if i < 0 || i >= Array.length v.data then
    invalid_arg "Vector_clock.tick: index out of bounds";
  v.data.(i) <- v.data.(i) + 1

(* Binary operations tolerate mixed sizes under the implicit-zero
   convention. The common (static-membership) case of equal sizes stays
   a single dense loop. *)

let merge_into dst src =
  if Array.length src.data > Array.length dst.data then
    grow dst (Array.length src.data);
  let d = dst.data and s = src.data in
  for i = 0 to Array.length s - 1 do
    if s.(i) > d.(i) then d.(i) <- s.(i)
  done

let copy_into ~src dst =
  let s = src.data in
  let ls = Array.length s and ld = Array.length dst.data in
  if ld < ls then dst.data <- Array.copy s
  else begin
    Array.blit s 0 dst.data 0 ls;
    (* wider scratch: the extra components must read as zero so the
       result is [equal] to [src] under the implicit-zero convention *)
    Array.fill dst.data ls (ld - ls) 0
  end

let merge a b =
  let r = copy a in
  merge_into r b;
  r

let equal a b =
  let a = a.data and b = b.data in
  let la = Array.length a and lb = Array.length b in
  let n = if la < lb then la else lb in
  let rec same i = i = n || (a.(i) = b.(i) && same (i + 1)) in
  let rec zero v i l = i = l || (v.(i) = 0 && zero v (i + 1) l) in
  same 0 && zero a n la && zero b n lb

let leq a b =
  let a = a.data and b = b.data in
  let la = Array.length a and lb = Array.length b in
  let n = if la < lb then la else lb in
  let rec go i = i = n || (a.(i) <= b.(i) && go (i + 1)) in
  (* components of [a] beyond [b]'s size must be zero (≤ implicit 0) *)
  let rec zero i = i = la || (a.(i) = 0 && zero (i + 1)) in
  go 0 && zero n

let lt a b = leq a b && not (equal a b)
let concurrent a b = (not (lt a b)) && not (lt b a) && not (equal a b)

type order = Equal | Before | After | Concurrent

(* Single pass: track whether some component of [a] is below [b] and
   vice versa. Missing components read as zero. *)
let compare_partial a b =
  let a = a.data and b = b.data in
  let la = Array.length a and lb = Array.length b in
  let n = if la > lb then la else lb in
  let a_below = ref false and b_below = ref false in
  for i = 0 to n - 1 do
    let x = if i < la then a.(i) else 0
    and y = if i < lb then b.(i) else 0 in
    if x < y then a_below := true else if x > y then b_below := true
  done;
  match (!a_below, !b_below) with
  | false, false -> Equal
  | true, false -> Before
  | false, true -> After
  | true, true -> Concurrent

let compare_total a b =
  let a = a.data and b = b.data in
  let la = Array.length a and lb = Array.length b in
  let n = if la > lb then la else lb in
  let rec go i =
    if i = n then 0
    else
      let x = if i < la then a.(i) else 0
      and y = if i < lb then b.(i) else 0 in
      let c = Int.compare x y in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let pp ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list v.data)

let to_string v = Format.asprintf "%a" pp v
