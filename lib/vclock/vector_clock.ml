type t = int array

let create n =
  if n <= 0 then invalid_arg "Vector_clock.create: size must be positive";
  Array.make n 0

let of_array a =
  if Array.length a = 0 then invalid_arg "Vector_clock.of_array: empty";
  Array.iter
    (fun x ->
      if x < 0 then invalid_arg "Vector_clock.of_array: negative component")
    a;
  Array.copy a

let of_list l = of_array (Array.of_list l)
let copy = Array.copy
let size = Array.length

let get v i =
  if i < 0 || i >= Array.length v then
    invalid_arg "Vector_clock.get: index out of bounds";
  v.(i)

let unsafe_get = Array.unsafe_get

let unsafe_tick v i = Array.unsafe_set v i (Array.unsafe_get v i + 1)

let to_array = Array.copy
let to_list = Array.to_list
let sum v = Array.fold_left ( + ) 0 v

let set v i k =
  if i < 0 || i >= Array.length v then
    invalid_arg "Vector_clock.set: index out of bounds";
  if k < 0 then invalid_arg "Vector_clock.set: negative value";
  v.(i) <- k

let tick v i =
  if i < 0 || i >= Array.length v then
    invalid_arg "Vector_clock.tick: index out of bounds";
  v.(i) <- v.(i) + 1

let check_sizes name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vector_clock.%s: size mismatch" name)

let merge_into dst src =
  check_sizes "merge_into" dst src;
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let merge a b =
  let r = copy a in
  merge_into r b;
  r

let equal a b =
  check_sizes "equal" a b;
  let rec go i = i = Array.length a || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let leq a b =
  check_sizes "leq" a b;
  let rec go i = i = Array.length a || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let lt a b = leq a b && not (equal a b)
let concurrent a b = (not (lt a b)) && not (lt b a) && not (equal a b)

type order = Equal | Before | After | Concurrent

(* Single pass: track whether some component of [a] is below [b] and
   vice versa. *)
let compare_partial a b =
  check_sizes "compare_partial" a b;
  let a_below = ref false and b_below = ref false in
  for i = 0 to Array.length a - 1 do
    if a.(i) < b.(i) then a_below := true
    else if a.(i) > b.(i) then b_below := true
  done;
  match (!a_below, !b_below) with
  | false, false -> Equal
  | true, false -> Before
  | false, true -> After
  | true, true -> Concurrent

let compare_total a b =
  check_sizes "compare_total" a b;
  let rec go i =
    if i = Array.length a then 0
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let pp ppf v =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Format.pp_print_int)
    (Array.to_list v)

let to_string v = Format.asprintf "%a" pp v
