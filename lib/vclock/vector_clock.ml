(* Representation: a record holding the component array, so the vector
   can grow in place (membership joins) while every alias observes the
   new size. Components beyond a vector's physical size are implicitly
   zero: a clock taken in an n-process epoch compares correctly against
   one from a later, wider epoch, because a process that had not joined
   yet had produced no events.

   Generations: slot reuse (PR 9) extends each entry from a plain
   counter to a [(generation, counter)] pair so a write by the second
   occupant of a slot can never be confused with one by the first. The
   generation lane is a side array materialized only when some entry's
   generation is nonzero — [gens = None] means "all generations are 0"
   and every operation below takes the exact pre-generation dense path,
   so static-membership workloads pay nothing. Entries compare
   lexicographically: [(g, c) < (g', c')] iff [g < g'] or
   [g = g' && c < c'] (generation dominance). A lane shorter than
   [data] reads as zero beyond its physical size, mirroring the
   implicit-zero convention for counters. *)
type t = { mutable data : int array; mutable gens : int array option }

let create n =
  if n <= 0 then invalid_arg "Vector_clock.create: size must be positive";
  { data = Array.make n 0; gens = None }

let of_array a =
  if Array.length a = 0 then invalid_arg "Vector_clock.of_array: empty";
  Array.iter
    (fun x ->
      if x < 0 then invalid_arg "Vector_clock.of_array: negative component")
    a;
  { data = Array.copy a; gens = None }

let of_list l = of_array (Array.of_list l)

let copy v = { data = Array.copy v.data; gens = Option.map Array.copy v.gens }

let size v = Array.length v.data

let grow v n =
  let old = Array.length v.data in
  if n < old then invalid_arg "Vector_clock.grow: cannot shrink";
  if n > old then begin
    let data = Array.make n 0 in
    Array.blit v.data 0 data 0 old;
    v.data <- data
    (* the gen lane stays at its old length: entries beyond it read 0 *)
  end

let get v i =
  if i < 0 || i >= Array.length v.data then
    invalid_arg "Vector_clock.get: index out of bounds";
  v.data.(i)

let get0 v i =
  if i < 0 then invalid_arg "Vector_clock.get0: negative index";
  if i >= Array.length v.data then 0 else v.data.(i)

let unsafe_get v i = Array.unsafe_get v.data i

let unsafe_tick v i =
  Array.unsafe_set v.data i (Array.unsafe_get v.data i + 1)

let to_array v = Array.copy v.data
let to_list v = Array.to_list v.data
let sum v = Array.fold_left ( + ) 0 v.data

(* Generation accessors. [gen] tolerates any non-negative index (like
   [get0]) because staleness checks routinely probe entries of vectors
   captured in narrower epochs. *)

let gen v i =
  if i < 0 then invalid_arg "Vector_clock.gen: negative index";
  match v.gens with
  | None -> 0
  | Some g -> if i < Array.length g then g.(i) else 0

let set_gen v i k =
  if i < 0 || i >= Array.length v.data then
    invalid_arg "Vector_clock.set_gen: index out of bounds";
  if k < 0 then invalid_arg "Vector_clock.set_gen: negative generation";
  match v.gens with
  | None -> if k <> 0 then begin
      let g = Array.make (Array.length v.data) 0 in
      g.(i) <- k;
      v.gens <- Some g
    end
  | Some g ->
      if i < Array.length g then g.(i) <- k
      else if k <> 0 then begin
        let g' = Array.make (Array.length v.data) 0 in
        Array.blit g 0 g' 0 (Array.length g);
        g'.(i) <- k;
        v.gens <- Some g'
      end

let has_generations v =
  match v.gens with
  | None -> false
  | Some g -> Array.exists (fun x -> x <> 0) g

let generations v =
  let n = Array.length v.data in
  match v.gens with
  | None -> Array.make n 0
  | Some g ->
      let out = Array.make n 0 in
      Array.blit g 0 out 0 (min n (Array.length g));
      out

let set v i k =
  if i < 0 || i >= Array.length v.data then
    invalid_arg "Vector_clock.set: index out of bounds";
  if k < 0 then invalid_arg "Vector_clock.set: negative value";
  v.data.(i) <- k

let tick v i =
  if i < 0 || i >= Array.length v.data then
    invalid_arg "Vector_clock.tick: index out of bounds";
  v.data.(i) <- v.data.(i) + 1

(* Binary operations tolerate mixed sizes under the implicit-zero
   convention. The common (static-membership, generation-free) case of
   equal sizes stays a single dense loop; vectors carrying a gen lane
   take the generic lexicographic path. *)

let merge_into dst src =
  if Array.length src.data > Array.length dst.data then
    grow dst (Array.length src.data);
  match (dst.gens, src.gens) with
  | None, None ->
      let d = dst.data and s = src.data in
      for i = 0 to Array.length s - 1 do
        if s.(i) > d.(i) then d.(i) <- s.(i)
      done
  | _ ->
      let d = dst.data and s = src.data in
      for i = 0 to Array.length s - 1 do
        let gs = gen src i and gd = gen dst i in
        if gs > gd || (gs = gd && s.(i) > d.(i)) then begin
          d.(i) <- s.(i);
          if gs <> gd then set_gen dst i gs
        end
      done

let copy_into ~src dst =
  let s = src.data in
  let ls = Array.length s and ld = Array.length dst.data in
  if ld < ls then dst.data <- Array.copy s
  else begin
    Array.blit s 0 dst.data 0 ls;
    (* wider scratch: the extra components must read as zero so the
       result is [equal] to [src] under the implicit-zero convention *)
    Array.fill dst.data ls (ld - ls) 0
  end;
  match src.gens with
  | None -> (
      match dst.gens with
      | None -> ()
      | Some g -> Array.fill g 0 (Array.length g) 0)
  | Some g -> (
      let lg = Array.length g in
      match dst.gens with
      | Some d when Array.length d >= lg ->
          Array.blit g 0 d 0 lg;
          Array.fill d lg (Array.length d - lg) 0
      | _ -> dst.gens <- Some (Array.copy g))

let merge a b =
  let r = copy a in
  merge_into r b;
  r

let equal a b =
  match (a.gens, b.gens) with
  | None, None ->
      let a = a.data and b = b.data in
      let la = Array.length a and lb = Array.length b in
      let n = if la < lb then la else lb in
      let rec same i = i = n || (a.(i) = b.(i) && same (i + 1)) in
      let rec zero v i l = i = l || (v.(i) = 0 && zero v (i + 1) l) in
      same 0 && zero a n la && zero b n lb
  | _ ->
      let la = Array.length a.data and lb = Array.length b.data in
      let n = if la > lb then la else lb in
      let rec go i =
        i = n
        || (get0 a i = get0 b i && gen a i = gen b i && go (i + 1))
      in
      go 0

let leq a b =
  match (a.gens, b.gens) with
  | None, None ->
      let a = a.data and b = b.data in
      let la = Array.length a and lb = Array.length b in
      let n = if la < lb then la else lb in
      let rec go i = i = n || (a.(i) <= b.(i) && go (i + 1)) in
      (* components of [a] beyond [b]'s size must be zero (≤ implicit 0) *)
      let rec zero i = i = la || (a.(i) = 0 && zero (i + 1)) in
      go 0 && zero n
  | _ ->
      let la = Array.length a.data and lb = Array.length b.data in
      let n = if la > lb then la else lb in
      let rec go i =
        i = n
        ||
        let ga = gen a i and gb = gen b i in
        (ga < gb || (ga = gb && get0 a i <= get0 b i)) && go (i + 1)
      in
      go 0

let lt a b = leq a b && not (equal a b)
let concurrent a b = (not (lt a b)) && not (lt b a) && not (equal a b)

type order = Equal | Before | After | Concurrent

(* Single pass: track whether some component of [a] is below [b] and
   vice versa. Missing components read as zero; entries with a gen lane
   compare lexicographically. *)
let compare_partial a b =
  let plain = a.gens = None && b.gens = None in
  let da = a.data and db = b.data in
  let la = Array.length da and lb = Array.length db in
  let n = if la > lb then la else lb in
  let a_below = ref false and b_below = ref false in
  for i = 0 to n - 1 do
    let x = if i < la then da.(i) else 0
    and y = if i < lb then db.(i) else 0 in
    let c =
      if plain then Int.compare x y
      else
        let g = Int.compare (gen a i) (gen b i) in
        if g <> 0 then g else Int.compare x y
    in
    if c < 0 then a_below := true else if c > 0 then b_below := true
  done;
  match (!a_below, !b_below) with
  | false, false -> Equal
  | true, false -> Before
  | false, true -> After
  | true, true -> Concurrent

let compare_total a b =
  let plain = a.gens = None && b.gens = None in
  let da = a.data and db = b.data in
  let la = Array.length da and lb = Array.length db in
  let n = if la > lb then la else lb in
  let rec go i =
    if i = n then 0
    else
      let x = if i < la then da.(i) else 0
      and y = if i < lb then db.(i) else 0 in
      let c =
        if plain then Int.compare x y
        else
          let g = Int.compare (gen a i) (gen b i) in
          if g <> 0 then g else Int.compare x y
      in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let pp ppf v =
  if not (has_generations v) then
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         Format.pp_print_int)
      (Array.to_list v.data)
  else begin
    Format.pp_print_string ppf "[";
    Array.iteri
      (fun i c ->
        if i > 0 then Format.pp_print_string ppf "; ";
        let g = gen v i in
        if g = 0 then Format.pp_print_int ppf c
        else Format.fprintf ppf "%d@g%d" c g)
      v.data;
    Format.pp_print_string ppf "]"
  end

let to_string v = Format.asprintf "%a" pp v
