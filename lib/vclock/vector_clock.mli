(** Fidge–Mattern style vector clocks.

    A vector clock over [n] processes is an array of [n] non-negative
    counters. This module is the shared substrate for every logical-clock
    system in the repository: the classical happened-before clocks used
    by causal broadcast (ANBKH) and the paper's [Write_co] system, which
    is a vector clock characterizing the causal-memory order [↦co]
    (Theorems 1–2 of the paper).

    Values of type {!t} are mutable arrays; the functions below document
    whether they mutate their argument or return a fresh vector. *)

type t

(** {1 Construction} *)

val create : int -> t
(** [create n] is a fresh all-zero vector over [n] processes.
    @raise Invalid_argument if [n <= 0]. *)

val of_array : int array -> t
(** [of_array a] copies [a] into a fresh clock.
    @raise Invalid_argument if [a] is empty or has a negative entry. *)

val of_list : int list -> t
(** [of_list l] is [of_array (Array.of_list l)]. *)

val copy : t -> t
(** [copy v] is a fresh clock equal to [v]. *)

val grow : t -> int -> unit
(** [grow v n] widens [v] in place to [n] components, zero-padding the
    new entries. Every alias of [v] observes the new size. Used when the
    membership view widens (a process joins): a clock taken in an
    earlier, narrower epoch remains comparable because a process that
    had not joined yet had produced no events — its component is zero.
    No-op when [n = size v].
    @raise Invalid_argument if [n < size v] (clocks never shrink). *)

(** {1 Accessors} *)

val size : t -> int
(** Number of process components. *)

val get : t -> int -> int
(** [get v i] is component [i].
    @raise Invalid_argument if [i] is out of bounds. *)

val get0 : t -> int -> int
(** [get0 v i] is component [i], reading 0 beyond [v]'s physical size —
    the implicit-zero convention for clocks captured in a narrower
    membership epoch. @raise Invalid_argument only if [i < 0]. *)

val unsafe_get : t -> int -> int
(** [get] without the bounds check. For protocol hot loops (the
    deliverability scan runs once per buffered-message examination)
    where the index is a process id already validated at creation or
    network-delivery time. Out-of-bounds access is undefined
    behaviour — never feed it unvalidated indices. *)

val unsafe_tick : t -> int -> unit
(** [tick] without the bounds check; same contract as {!unsafe_get}. *)

val to_array : t -> int array
(** Fresh array snapshot of the components. *)

val to_list : t -> int list

val sum : t -> int
(** Sum of all components — the number of events in the vector's causal
    past (counting multiplicity per process). *)

(** {1 Generations}

    Slot reuse extends each entry from a plain counter to a
    [(generation, counter)] pair: when a departed slot is recycled for a
    genuinely new process, the slot's generation is bumped so the new
    occupant's entries can never be confused with its predecessor's.
    Entries compare lexicographically — [(g, c) < (g', c')] iff
    [g < g'], or [g = g'] and [c < c'] (generation dominance). The lane
    is materialized lazily: while every generation is 0 the vector is
    represented exactly as before and all operations take the
    pre-generation dense path. *)

val gen : t -> int -> int
(** [gen v i] is the generation of entry [i]; 0 when no lane is
    materialized or beyond its physical size.
    @raise Invalid_argument if [i < 0]. *)

val set_gen : t -> int -> int -> unit
(** [set_gen v i g] assigns the generation of entry [i], materializing
    the lane on first nonzero assignment. Setting 0 on a lane-less
    vector is a no-op.
    @raise Invalid_argument on out-of-bounds index or negative value. *)

val has_generations : t -> bool
(** [has_generations v] is true iff some entry has a nonzero
    generation — the wire-cost model charges the gen side lane only
    in that case. *)

val generations : t -> int array
(** Fresh snapshot of the generation lane, zero-filled to [size v]. *)

(** {1 Mutation} *)

val set : t -> int -> int -> unit
(** [set v i k] assigns component [i].
    @raise Invalid_argument on out-of-bounds index or negative value. *)

val tick : t -> int -> unit
(** [tick v i] increments component [i] in place; this is what a process
    [p_i] does when it produces a new locally-counted event (a write, for
    [Write_co]). *)

val merge_into : t -> t -> unit
(** [merge_into dst src] sets [dst] to the component-wise maximum of
    [dst] and [src] (in place). This is the read-time merge of OptP
    (line 1 of the read procedure) and the delivery-time merge of causal
    broadcast. If [src] is wider than [dst], [dst] is grown first;
    narrower [src] components beyond its size are implicit zeros.

    This is the {e scratch-merge} API of the allocation-free hot path:
    protocol receive and write steps merge wire vectors into their
    preallocated working vectors with it instead of building fresh
    merged copies. Under static membership it never allocates. *)

val copy_into : src:t -> t -> unit
(** [copy_into ~src dst] makes [dst] equal to [src] in place — the
    scratch counterpart of {!copy}. When [dst]'s physical capacity
    suffices it allocates nothing (wider scratch components are zeroed,
    preserving equality under the implicit-zero convention); a narrower
    [dst] is reallocated once and then stays wide. *)

(** {1 Pure operations} *)

val merge : t -> t -> t
(** [merge a b] is a fresh component-wise maximum. *)

val equal : t -> t -> bool

val leq : t -> t -> bool
(** [leq a b] is [∀k, a[k] ≤ b[k]] — the paper's [V ≤ V']. *)

val lt : t -> t -> bool
(** [lt a b] is [leq a b && not (equal a b)] — the paper's [V < V'],
    i.e. the clock order corresponding to [↦co] on writes (Theorem 1). *)

val concurrent : t -> t -> bool
(** [concurrent a b] is [not (lt a b) && not (lt b a)] for distinct
    vectors; equal vectors are not concurrent. The paper's [V ∥ V']. *)

type order = Equal | Before | After | Concurrent

val compare_partial : t -> t -> order
(** Full classification of the pair under the vector partial order. *)

val compare_total : t -> t -> int
(** An arbitrary total order extending [lt] (lexicographic); useful for
    deterministic sorting and for use as a [Map]/[Set] key. *)

(** {1 Pretty printing} *)

val pp : Format.formatter -> t -> unit
(** Prints as [[a; b; c]] — matching the paper's figures. *)

val to_string : t -> string
