The bench harness renders the paper's Table 1 deterministically:

  $ causal-dsm-bench --only T1 --no-micro
  
  ================================================
  T1 — Table 1: X_co-safe over H1
  ================================================
  Table 1: X_co-safe(e) of each apply event of H1 (paper Table 1)
  +------------------+--------------------------------------+
  |     event e      |          enabling set X(e)           |
  +------------------+--------------------------------------+
  | apply_1(w1(x1)a) | ∅                                    |
  | apply_2(w1(x1)a) | ∅                                    |
  | apply_3(w1(x1)a) | ∅                                    |
  | apply_1(w1(x1)c) | {apply_1(w1(x1)a)}                   |
  | apply_2(w1(x1)c) | {apply_2(w1(x1)a)}                   |
  | apply_3(w1(x1)c) | {apply_3(w1(x1)a)}                   |
  | apply_1(w2(x2)b) | {apply_1(w1(x1)a)}                   |
  | apply_2(w2(x2)b) | {apply_2(w1(x1)a)}                   |
  | apply_3(w2(x2)b) | {apply_3(w1(x1)a)}                   |
  | apply_1(w3(x2)d) | {apply_1(w1(x1)a), apply_1(w2(x2)b)} |
  | apply_2(w3(x2)d) | {apply_2(w1(x1)a), apply_2(w2(x2)b)} |
  | apply_3(w3(x2)d) | {apply_3(w1(x1)a), apply_3(w2(x2)b)} |
  +------------------+--------------------------------------+


--json writes a machine-readable result file. The stress section's
timings are nondeterministic, so only the document's shape is checked
(--stress-quick keeps the script tiny):

  $ causal-dsm-bench --only S --stress-quick --json out.json > /dev/null
  $ grep -c '"schema": "causal-dsm-bench/v1"' out.json
  1
  $ grep -o '"\(senders\|writes_per_sender\|messages\)": [0-9]*' out.json
  "senders": 8
  "writes_per_sender": 6
  "messages": 48
  $ grep -c '"\(scan_ms\|indexed_ms\|speedup\)":' out.json
  3
  $ grep -c '"micro": \[\]' out.json
  1
