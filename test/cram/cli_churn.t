Dynamic membership: the view changes mid-run. A 6-slot universe starts
with 4 members; slot 4 joins fresh at t=80 (bootstrapped by a sponsor's
state transfer, then caught up through the normal receive path), slot 1
crashes at t=120 and rejoins at t=220 under a fresh incarnation (its
pre-crash frames are quarantined as stale, never applied), and slot 2
departs gracefully at t=300 after flushing its unacknowledged writes.
The audit spans every epoch: a member active at the end owes an apply
of every write, including those issued before it joined.

  $ dsm-sim run -n 6 -m 3 --ops 25 --seed 3 --latency exp:8 --initial 4 --join 4@80 --crash 1@120 --join 1@220 --leave 2@300
  workload: workload(n=6, m=3, ops/proc=25, writes=50%, think=exp(mean=10), vars=uniform, seed=3)
  network:  exp(mean=8)
  
  OptP churn campaign: 1 joins / 1 rejoins / 1 leaves over 4 epochs, 658 transfer bytes, sync 50 req / 50 replies, 38 replayed writes, 2 stale quarantined, 0 stale-dropped, 1 nonmember-dropped frames, 0 quarantine leaks; live_equal=true clean=true t_end=762.7
  p5 join@80.0 transfer=16(301B) replayed=13 converged=+3.2
  p2 rejoin@220.0 transfer=18(357B) replayed=18 converged=+3.1
  
  audit: applies=298 delays=47 (necessary=47, unnecessary=0) skips=0 complete=true lost=0
         violations=0



A randomized churn storm as machine-readable JSON: 3 fresh joins, 2
graceful leaves and 1 crash-rejoin drawn from the seed, under lossy,
duplicating, corrupting links. Zero quarantine leaks and zero
unnecessary delays even while the membership churns.

  $ dsm-sim run -n 12 -m 3 --ops 25 --seed 2 --latency exp:8 --drop 0.2 --duplicate 0.05 --corrupt 0.05 --initial 6 --churn 3,2,1@400 --json
  {
    "schema": "causal-dsm-churn/v1",
    "protocol": "OptP",
    "clean": true,
    "live_equal": true,
    "membership": { "final_epoch": 7, "joins": 3, "rejoins": 1, "leaves": 2, "active_at_end": [0, 3, 4, 5, 6, 7, 8] },
    "catch_ups": [
      { "proc": 6, "kind": "join", "started_at": 51.9, "converged_at": 59.7, "latency": 7.7,
        "transfer_writes": 10, "transfer_bytes": 223, "replayed": 11 },
      { "proc": 7, "kind": "join", "started_at": 86.4, "converged_at": 93.2, "latency": 6.8,
        "transfer_writes": 13, "transfer_bytes": 281, "replayed": 22 },
      { "proc": 8, "kind": "join", "started_at": 131.0, "converged_at": 133.8, "latency": 2.8,
        "transfer_writes": 24, "transfer_bytes": 556, "replayed": 24 },
      { "proc": 3, "kind": "rejoin", "started_at": 176.3, "converged_at": 192.8, "latency": 16.4,
        "transfer_writes": 37, "transfer_bytes": 942, "replayed": 32 }
    ],
    "quarantine": { "chan_stale_quarantined": 16, "net_stale_dropped": 1, "net_nonmember_dropped": 0, "corrupt_dropped": 174, "quarantine_leaks": 0 },
    "durability": { "commits": 188, "snapshot_bytes": 461980, "transfer_bytes": 2002, "rolled_back_events": 0 },
    "catch_up": { "sync_requests": 245, "sync_replies": 244, "replayed_writes": 202, "stale_deliveries_dropped": 71 },
    "wire": { "payloads_sent": 1298, "frames_sent": 4055, "retransmissions": 976, "aborted_payloads": 17, "duplicates_discarded": 475 },
    "audit": { "violations": 0, "necessary_delays": 446, "unnecessary_delays": 0, "lost": 0 },
    "engine_steps": 6310,
    "sim_end_time": 20359.6
  }

ANBKH churns too (it buffers more, but stays consistent across epochs).

  $ dsm-sim run --protocol anbkh -n 6 -m 3 --ops 25 --seed 3 --latency exp:8 --initial 4 --join 4@80 --leave 2@300 > /dev/null 2>&1; echo "exit: $?"
  exit: 0

Corrupt frames alone (no membership change) are healed by the
checksum + retransmission path of the reliable channel.

  $ dsm-sim run -n 4 -m 3 --ops 20 --seed 5 --latency exp:8 --corrupt 0.2 > /dev/null 2>&1; echo "exit: $?"
  exit: 0

Writing-semantics protocols cannot serve the state transfer and are
rejected with an explanation.

  $ dsm-sim run --protocol ws-recv --join 4@50 -n 6 --initial 4 2>&1 | tail -n 1
  dsm-sim: --join/--leave/--churn/--fd need a complete-broadcast protocol (optp, anbkh or optp-direct); WS-recv cannot serve state transfer

Malformed churn flags are rejected at parse time, contradictory ones at
validation time.

  $ dsm-sim run --join oops 2> /dev/null; echo "exit: $?"
  exit: 124
  $ dsm-sim run --churn 3,2@400 2> /dev/null; echo "exit: $?"
  exit: 124
  $ dsm-sim run -n 4 --initial 2 --churn 1,1,1@400 --crash 1@50:100 2>&1 | tail -n 1
  dsm-sim: --churn does not combine with --crash/--partition/--join/--leave
  $ dsm-sim run -n 4 --initial 9 2>&1 | tail -n 1
  dsm-sim: --initial must be in 2..n
