A crash plus a partition: process 1 crashes at t=120 and restarts from
its last durable snapshot at t=320; processes {0,1} are cut off from
{2,3} between t=150 and t=260. The recovered replica catches up by
anti-entropy, the run audits causally consistent and all replicas
converge.

  $ dsm-sim run -n 4 -m 3 --ops 30 --seed 3 --latency exp:8 --crash 1@120:320 --partition 0,1/2,3@150:260
  workload: workload(n=4, m=3, ops/proc=30, writes=50%, think=exp(mean=10), vars=uniform, seed=3)
  network:  exp(mean=8)
  
  OptP fault campaign: 1 recoveries, 82 commits (91009 bytes), 5 rolled-back events, sync 9 req / 9 replies, 27 replayed writes, 3 aborted payloads, 40 partition-dropped, 7 crash-dropped frames; live_equal=true clean=true t_end=1208.8
  p2 crash@120.0 recover@320.0 rolled_back=2 replayed=23 caught_up=+3.4
  
  audit: applies=232 delays=50 (necessary=50, unnecessary=0) skips=0 complete=true lost=0
         violations=0



The same campaign as machine-readable JSON.

  $ dsm-sim run -n 4 -m 3 --ops 30 --seed 3 --latency exp:8 --crash 1@120:320 --json
  {
    "schema": "causal-dsm-campaign/v1",
    "protocol": "OptP",
    "clean": true,
    "live_equal": true,
    "down_at_end": [],
    "recoveries": [
      { "proc": 1, "crashed_at": 120.0, "recovered_at": 320.0, "caught_up_at": 323.4,
        "latency": 3.4, "rolled_back_events": 2, "replayed": 27 }
    ],
    "durability": { "commits": 82, "snapshot_bytes": 92391, "rolled_back_events": 5 },
    "catch_up": { "sync_requests": 9, "sync_replies": 9, "replayed_writes": 27, "stale_deliveries_dropped": 0 },
    "wire": { "payloads_sent": 169, "frames_sent": 352, "retransmissions": 8, "aborted_payloads": 3,
              "frames_partition_dropped": 0, "frames_crash_dropped": 8, "duplicates_discarded": 8 },
    "audit": { "violations": 0, "necessary_delays": 39, "unnecessary_delays": 0, "lost": 0 },
    "engine_steps": 668,
    "sim_end_time": 1210.8
  }

ANBKH survives the same faults (it buffers more, but stays consistent).

  $ dsm-sim run --protocol anbkh -n 4 -m 3 --ops 30 --seed 3 --latency exp:8 --crash 1@120:320 --partition 0,1/2,3@150:260 > /dev/null 2>&1; echo "exit: $?"
  exit: 0

A crashed process may stay down; the audit then excuses only the
corpse's missing writes.

  $ dsm-sim run -n 4 -m 3 --ops 30 --seed 3 --latency exp:8 --crash 3@150 > /dev/null 2>&1; echo "exit: $?"
  exit: 0

Faulty links compose with the fault plan: drops and duplicates under a
crash still converge.

  $ dsm-sim run -n 4 -m 3 --ops 20 --seed 5 --latency exp:8 --drop 0.2 --duplicate 0.1 --crash 1@100:300 > /dev/null 2>&1; echo "exit: $?"
  exit: 0

A permanent crash under lossy links is the hard composite: the corpse's
unacknowledged send queue is abandoned (acks to it are crash-dropped,
so it could never drain) and the survivors gossip its partially
disseminated writes among themselves.

  $ dsm-sim run --protocol anbkh -n 6 -m 4 --ops 40 --seed 7 --latency exp:12 --drop 0.15 --crash 2@200:600 --crash 4@250 --partition 0,1,2/3,4,5@300:500 > /dev/null 2>&1; echo "exit: $?"
  exit: 0

Checkpoint interval is configurable: checkpointing rarely means a crash
rolls more received writes back, but recovery still converges.

  $ dsm-sim run -n 4 -m 3 --ops 30 --seed 3 --latency exp:8 --checkpoint-every 500 --crash 1@120:320 > /dev/null 2>&1; echo "exit: $?"
  exit: 0

Writing-semantics protocols cannot serve anti-entropy catch-up and are
rejected with an explanation.

  $ dsm-sim run --protocol ws-recv --crash 1@50:100 2>&1 | tail -n 1
  dsm-sim: --crash/--partition need a complete-broadcast protocol (optp, anbkh or optp-direct); WS-recv cannot serve anti-entropy catch-up

  $ dsm-sim run --json 2>&1 | tail -n 1; echo "exit: $?"
  dsm-sim: --json requires --crash, --partition or churn flags
  exit: 0

Malformed fault specs are rejected at parse time.

  $ dsm-sim run --crash oops 2> /dev/null; echo "exit: $?"
  exit: 124
  $ dsm-sim run --partition "0,1/2,3@200:100" 2> /dev/null; echo "exit: $?"
  exit: 124
