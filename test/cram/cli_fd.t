Emergent membership: with --fd no view change is scripted. Active
slots gossip heartbeats, a phi-accrual detector accrues suspicion from
silence, and the view history is whatever the detector concluded.
Slot 1 crashes at t=120 and restarts at t=320: its silence is
suspected (epoch 1), and its first post-restart heartbeat refutes the
suspicion and re-admits it through the rejoin state transfer
(epoch 3). Slot 3 crashes for good at t=200 and is suspected out
(epoch 2). The audit still demands zero unnecessary delays.

  $ dsm-sim run -n 6 -m 3 --ops 25 --seed 3 --latency exp:8 --fd --crash 1@120:320 --crash 3@200
  workload: workload(n=6, m=3, ops/proc=25, writes=50%, think=exp(mean=10), vars=uniform, seed=3)
  network:  exp(mean=8)
  
  OptP churn campaign: 0 joins / 1 rejoins / 0 leaves over 3 epochs, 732 transfer bytes, sync 104 req / 100 replies, 37 replayed writes, 5 stale quarantined, 1 stale-dropped, 0 nonmember-dropped frames, 0 quarantine leaks; live_equal=true clean=true t_end=1837.2
  p2 rejoin@320.0 transfer=35(732B) replayed=35 converged=+2.7
  fd: threshold=3.0 heartbeat=20.0 — 941 heartbeats, 2 suspicions (0 false), 1 refutations
  p2 suspected by p6@200.0 phi=3.23 (down, detected +80.0) refuted@320.0
  p4 suspected by p1@300.0 phi=3.32 (down, detected +100.0)
  epoch 1 @200.0: p2 suspected by p6 (phi=3.23)
  epoch 2 @300.0: p4 suspected by p1 (phi=3.32)
  epoch 3 @320.0: p2 rejoined: heartbeat sent@320.0 to p6 refuted the suspicion
  
  audit: applies=403 delays=74 (necessary=74, unnecessary=0) skips=0 complete=true lost=0
         violations=0

The same run as machine-readable JSON: the detector block and the
per-epoch view_changes log with the reason for each change.

  $ dsm-sim run -n 6 -m 3 --ops 25 --seed 3 --latency exp:8 --fd --crash 1@120:320 --crash 3@200 --json
  {
    "schema": "causal-dsm-churn/v1",
    "protocol": "OptP",
    "clean": true,
    "live_equal": true,
    "membership": { "final_epoch": 3, "joins": 0, "rejoins": 1, "leaves": 0, "active_at_end": [0, 1, 2, 4, 5] },
    "detector": { "threshold": 3, "heartbeat_every": 20, "window": 16, "adaptive": 0,
                  "heartbeats_sent": 941, "suspicions": 2, "false_suspicions": 0, "refutations": 1 },
    "view_changes": [
      { "epoch": 1, "at": 200.0, "why": "p2 suspected by p6 (phi=3.23)" },
      { "epoch": 2, "at": 300.0, "why": "p4 suspected by p1 (phi=3.32)" },
      { "epoch": 3, "at": 320.0, "why": "p2 rejoined: heartbeat sent@320.0 to p6 refuted the suspicion" }
    ],
    "catch_ups": [
      { "proc": 1, "kind": "rejoin", "started_at": 320.0, "converged_at": 322.8, "latency": 2.7,
        "transfer_writes": 35, "transfer_bytes": 732, "replayed": 35 }
    ],
    "quarantine": { "chan_stale_quarantined": 5, "net_stale_dropped": 1, "net_nonmember_dropped": 0, "corrupt_dropped": 0, "quarantine_leaks": 0 },
    "durability": { "commits": 107, "snapshot_bytes": 146371, "transfer_bytes": 732, "rolled_back_events": 13 },
    "catch_up": { "sync_requests": 104, "sync_replies": 100, "replayed_writes": 37, "stale_deliveries_dropped": 2 },
    "wire": { "payloads_sent": 1478, "frames_sent": 2981, "retransmissions": 55, "aborted_payloads": 64, "duplicates_discarded": 27 },
    "audit": { "violations": 0, "necessary_delays": 74, "unnecessary_delays": 0, "lost": 0 },
    "engine_steps": 4753,
    "sim_end_time": 1837.2
  }

Tighter threshold, faster heartbeats: detection gets quicker; the
phi values in the reasons sit just above the lower threshold.

  $ dsm-sim run -n 5 -m 3 --ops 20 --seed 4 --latency exp:8 --fd --fd-threshold 2 --heartbeat-every 10 --crash 2@150 --json | grep -A 3 '"view_changes"'
    "view_changes": [
      { "epoch": 1, "at": 190.0, "why": "p3 suspected by p1 (phi=2.08)" }
    ],
    "catch_ups": [],

The plan subcommand dry-runs a fault/churn schedule without executing
it, and names the driver the run would use.

  $ dsm-sim plan -n 6 --initial 4 --join 4@80 --crash 1@120
  universe: 6 slots, 4 initial members
  driver: nemesis
  events: 2
  join p5 @80.000;
  crash p2 @120.000

Forcing the static fault driver onto a churny plan is refused with a
pointer at the membership-owning driver.

  $ dsm-sim plan --driver fault -n 6 --initial 5 --join 5@50
  dsm-sim: Fault_campaign.run: static membership only, but the plan contains join p6 @50.000 — membership changes need a churn-aware driver: Nemesis.run for combined fault schedules (CLI: dsm-sim nemesis), or Churn_campaign.run for churn alone (CLI: dsm-sim run --join/--leave/--churn, or --fd for detector-driven views)
  [124]

--fd owns the view: scripted membership does not combine with it.

  $ dsm-sim run --fd --join 4@50 -n 6 --initial 4 2>&1 | tail -n 1
  dsm-sim: --fd is emergent membership — drop --join/--leave/--churn; crashes and partitions are the only scripted inputs, the detector produces the view history

Detector parameters are validated before the run starts.

  $ dsm-sim run --fd --fd-threshold 0 -n 4 2>&1 | tail -n 1
  dsm-sim: Failure_detector.config: threshold must be positive
