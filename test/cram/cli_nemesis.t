Nemesis: unified adversarial fault campaigns. The default mode runs
the scenario corpus — named fixed-seed schedules with expected
verdicts, including the canary scenario that must FAIL as a safety
violation (a swarm that cannot catch the deliberately buggy protocol
is not testing anything).

  $ dsm-sim nemesis
  clean-baseline         clean              expected [clean] ok
  partition-heal         clean              expected [clean] ok
  crash-recover          clean              expected [clean] ok
  asym-cut               clean              expected [clean] ok
  flap-storm             clean              expected [clean] ok
  tail-inflation         clean              expected [clean] ok
  churn-storm            clean              expected [clean] ok
  false-suspicion-storm  refuted-suspicion  expected [refuted-suspicion] ok
  corrupt-storm          clean              expected [clean] ok
  kitchen-sink           refuted-suspicion  expected [clean; refuted-suspicion] ok
  session-kill-home      refuted-suspicion  expected [clean; refuted-suspicion; degraded-session] ok
  session-partition-home refuted-suspicion  expected [clean; refuted-suspicion; degraded-session] ok
  session-migrate-storm  refuted-suspicion  expected [clean; refuted-suspicion; degraded-session] ok
  session-dropped-handoff session-anomaly    expected [session-anomaly] ok
  canary-reorder         violation          expected [violation] ok

A fixed-seed swarm: randomized combined-fault schedules (churn +
partitions + one-way cuts + flaps + inflation + corruption + an armed
detector), each classified. Accepted verdicts are clean and
refuted-suspicion.

  $ dsm-sim nemesis --swarm 6 --seed 5
  swarm: 6 schedules, 6 accepted
    clean              6
  

The self-test: a canary swarm must fail, and the first failure shrinks
to a minimal schedule saved as replayable JSON.

  $ dsm-sim nemesis --swarm 2 --protocol canary --seed 42 --shrink --out min.json
  swarm: 2 schedules, 0 accepted
    violation          2
    FAIL swarm-42 [canary, seed 42]: violation — applies=454 delays=131 (necessary=131 unnecessary=0) violations=46 lost=0 ghost=0 false-suspicions=0 refuted=0 live_equal=true complete=true sessions: ops=114 migrations=63 retries=32 degraded=0 dedup=0 dup-writes=0 session-violations=0
    FAIL swarm-43 [canary, seed 43]: violation — applies=820 delays=190 (necessary=190 unnecessary=0) violations=64 lost=0 ghost=0 false-suspicions=0 refuted=0 live_equal=true complete=true sessions: ops=135 migrations=2 retries=3 degraded=0 dedup=2 dup-writes=0 session-violations=0
  
  shrink to violation: 11 -> 1 fault events in 11 runs (schedule swarm-42)
  reproducer -> min.json
  dsm-sim: 2/2 schedules not accepted
  [124]

The reproducer replays deterministically — two replays are
byte-identical.

  $ dsm-sim nemesis --replay min.json
  swarm-42 [canary, seed 42]: violation — applies=292 delays=51 (necessary=51 unnecessary=0) violations=2 lost=0 ghost=0 false-suspicions=0 refuted=0 live_equal=true complete=true
  $ dsm-sim nemesis --replay min.json
  swarm-42 [canary, seed 42]: violation — applies=292 delays=51 (necessary=51 unnecessary=0) violations=2 lost=0 ghost=0 false-suspicions=0 refuted=0 live_equal=true complete=true

The reproducer is an ordinary fault plan: the plan subcommand loads
it, names the driver, and pretty-prints the schedule.

  $ dsm-sim plan --file min.json
  universe: 4 slots, 3 initial members
  driver: nemesis
  protocol: canary, seed 42
  events: 1
  join p4 @65.693

Unknown scenarios and protocols fail loudly.

  $ dsm-sim nemesis --scenario no-such-thing
  dsm-sim: unknown scenario "no-such-thing" (try --list-scenarios)
  [124]
  $ dsm-sim nemesis --swarm 1 --protocol tcp
  dsm-sim: unknown protocol "tcp" (expected optp | anbkh | optp-direct | canary)
  [124]
