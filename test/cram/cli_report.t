Wire accounting on a run: --wire prints the per-edge cost summary and
--wire-out exports the full accountant state.

  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 \
  >   --wire --wire-out wire.json
  workload: workload(n=3, m=2, ops/proc=20, writes=50%, think=exp(mean=10), vars=uniform, seed=4)
  network:  exp(mean=10)
  
  protocol: OptP
  
  OptP: 215 events, 58 msgs sent / 58 delivered, t_end=201.1
  applies=87 delays=10 skips=0 buffer-high=1,4,1
  
  audit: applies=87 delays=10 (necessary=10, unnecessary=0) skips=0 complete=true lost=0
         violations=0
  wire: 58 frames, 4176 bytes -> wire.json
  
  wire
  +-------+--------+----------+-----------+--------+--------------+---------------+
  | cause | frames | header B | payload B | meta B | meta B/frame | delta B/frame |
  +-------+--------+----------+-----------+--------+--------------+---------------+
  | write |     58 |      928 |       928 |   2320 |         40.0 |          33.4 |
  | total |     58 |      928 |       928 |   2320 |         40.0 |          33.4 |
  +-------+--------+----------+-----------+--------+--------------+---------------+
  
  $ grep -c '"schema": *"causal-dsm-wire/v1"' wire.json
  1

Observation must not move the simulation: the same seed with and
without the wire accountant prints the same run report.

  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 > plain.out
  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 \
  >   --wire-out on-wire.json | grep -v '^wire:' > observed.out
  $ cmp plain.out observed.out && echo identical
  identical

The report subcommand bundles outcome, audit, latency quantiles, wire
cost and the flight recorder into one document.

  $ dsm-sim report -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 \
  >   --scrape-every 50 --out report.json --series-out series.jsonl
  OptP: 215 events, 58 msgs sent / 58 delivered, t_end=201.1
  applies=87 delays=10 skips=0 buffer-high=1,4,1
  applies=87 delays=10 (necessary=10, unnecessary=0) skips=0 complete=true lost=0
  violations=0
  latency quantiles (sim time):
    delivery delay     n=58      p50=6.624      p95=22.28      p99=56.05      max=56.05
    blocked duration   n=10      p50=10.22      p95=44.82      p99=44.82      max=44.82
  
  wire
  +-------+--------+----------+-----------+--------+--------------+---------------+
  | cause | frames | header B | payload B | meta B | meta B/frame | delta B/frame |
  +-------+--------+----------+-----------+--------+--------------+---------------+
  | write |     58 |      928 |       928 |   2320 |         40.0 |          33.4 |
  | total |     58 |      928 |       928 |   2320 |         40.0 |          33.4 |
  +-------+--------+----------+-----------+--------+--------------+---------------+
  
  flight recorder: 3 scrapes over 23 series (ring capacity 256)
  metrics
  +------------------------------+----------+-------+----------------------------------------+
  |            metric            |   kind   | value |                 detail                 |
  +------------------------------+----------+-------+----------------------------------------+
  | net_delivery_delay           | quantile |    58 | p50=6.62 p95=22.28 p99=56.05 max=56.05 |
  | net_payload_bytes            | counter  |  4176 |                                        |
  | net_partition_cuts           | counter  |     0 |                                        |
  | net_corrupted                | counter  |     0 |                                        |
  | net_duplicated               | counter  |     0 |                                        |
  | net_delayed{cause=inflation} | counter  |     0 |                                        |
  | net_dropped{cause=flap}      | counter  |     0 |                                        |
  | net_dropped{cause=oneway}    | counter  |     0 |                                        |
  | net_dropped{cause=nonmember} | counter  |     0 |                                        |
  | net_dropped{cause=stale}     | counter  |     0 |                                        |
  | net_dropped{cause=crash}     | counter  |     0 |                                        |
  | net_dropped{cause=partition} | counter  |     0 |                                        |
  | net_dropped{cause=random}    | counter  |     0 |                                        |
  | net_delivered                | counter  |    58 |                                        |
  | net_sends                    | counter  |    58 |                                        |
  | buffer_occupancy             | gauge    |     0 | max=4                                  |
  | proto_wco_merges_on_read     | counter  |    16 |                                        |
  | proto_writes                 | counter  |    29 |                                        |
  | proto_reads                  | counter  |    31 |                                        |
  | proto_skips                  | counter  |     0 |                                        |
  | proto_delayed_applies        | counter  |    10 |                                        |
  | proto_applies                | counter  |    87 |                                        |
  | buffer_wakeup_scans          | counter  |    31 |                                        |
  | buffer_total_buffered        | counter  |    10 |                                        |
  | buffer_high_watermark        | gauge    |     4 | max=4                                  |
  +------------------------------+----------+-------+----------------------------------------+
  report -> report.json
  timeseries: 3 scrapes -> series.jsonl

The JSON document carries the versioned schema and every section.

  $ grep -c '"schema": *"causal-dsm-report/v1"' report.json
  1
  $ grep -c '"checker"' report.json
  1
  $ grep -c '"quantiles"' report.json
  1
  $ grep -c '"wire"' report.json
  1
  $ grep -c '"timeseries"' report.json
  1
  $ head -n 1 series.jsonl | grep -c '"t":'
  1

A protocol that claims Theorem-4 optimality still fails the report
command on unnecessary delays; ANBKH does not claim it, so exit is 0.

  $ dsm-sim report --protocol anbkh -n 4 --ops 40 --seed 3 \
  >   --latency uniform:1,80 > /dev/null; echo "exit: $?"
  exit: 0

bench diff compares two bench JSON documents metric by metric.  A file
diffed against itself is clean.

  $ cat > bench_old.json <<'EOF'
  > {"schema":"causal-dsm-bench/v1","section":"engine_throughput",
  >  "results":[{"n":8,"ns_per_event":120.0,"events_per_sec":8000000.0}]}
  > EOF
  $ dsm-sim bench diff bench_old.json bench_old.json; echo "exit: $?"
  bench diff (fail-over 2.00x)
  +-----------------------------+--------+---------+---------+--------+---------+
  |           metric            |  dir   |   old   |   new   | ratio  | verdict |
  +-----------------------------+--------+---------+---------+--------+---------+
  | results[n=8].ns_per_event   | lower  |     120 |     120 | 1.000x | ok      |
  | results[n=8].events_per_sec | higher | 8000000 | 8000000 | 1.000x | ok      |
  +-----------------------------+--------+---------+---------+--------+---------+
  
  no regressions over 2.00x across 3 shared metrics
  exit: 0

A slower new run beyond the threshold makes the diff fail with a
non-zero exit; direction-aware, so a higher events_per_sec is fine.

  $ cat > bench_new.json <<'EOF'
  > {"schema":"causal-dsm-bench/v1","section":"engine_throughput",
  >  "results":[{"n":8,"ns_per_event":300.0,"events_per_sec":9000000.0}]}
  > EOF
  $ dsm-sim bench diff bench_old.json bench_new.json; echo "exit: $?"
  bench diff (fail-over 2.00x)
  +-----------------------------+--------+---------+---------+--------+-----------+
  |           metric            |  dir   |   old   |   new   | ratio  |  verdict  |
  +-----------------------------+--------+---------+---------+--------+-----------+
  | results[n=8].ns_per_event   | lower  |     120 |     300 | 2.500x | REGRESSED |
  | results[n=8].events_per_sec | higher | 8000000 | 9000000 | 0.889x | ok        |
  +-----------------------------+--------+---------+---------+--------+-----------+
  
  1 regression(s) over 2.00x across 3 shared metrics
  dsm-sim: 1 metric(s) regressed beyond 2.00x
  exit: 124
  $ dsm-sim bench diff bench_old.json bench_new.json --fail-over 3.0 \
  >   > /dev/null; echo "exit: $?"
  exit: 0
