Trace and metrics export on a deterministic run.

  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 \
  >   --trace-out trace.jsonl --metrics-out metrics.json
  workload: workload(n=3, m=2, ops/proc=20, writes=50%, think=exp(mean=10), vars=uniform, seed=4)
  network:  exp(mean=10)
  
  protocol: OptP
  
  OptP: 215 events, 58 msgs sent / 58 delivered, t_end=201.1
  applies=87 delays=10 skips=0 buffer-high=1,4,1
  
  audit: applies=87 delays=10 (necessary=10, unnecessary=0) skips=0 complete=true lost=0
         violations=0
  trace: 29 spans (10 blocked records) -> trace.jsonl (jsonl)
  metrics: 25 instruments -> metrics.json

One JSONL line per span; every blocked destination names the dot it
waited on.

  $ wc -l < trace.jsonl
  29
  $ grep -c '"blocked_on":"w' trace.jsonl
  9
  $ grep -c '"name":"net_sends"' metrics.json
  1

The chrome rendering is a trace-event array whose blocked slices match
the audit's delay count.

  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 \
  >   --trace-out trace.chrome --trace-format chrome > /dev/null
  $ head -c 1 trace.chrome
  [
  $ grep -c '"name":"blocked ' trace.chrome
  10

Observation must not move the simulation: the same seed with and
without observers prints the same run report.

  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 > plain.out
  $ dsm-sim run -n 3 -m 2 --ops 20 --seed 4 --latency exp:10 \
  >   --trace-out t2.jsonl --metrics-out m2.json \
  >   | grep -v '^trace:' | grep -v '^metrics:' > observed.out
  $ cmp plain.out observed.out && echo identical
  identical

Explain: the provenance of every delay, each claim checked against the
ground-truth causal order. OptP rows are all witnessed (Theorem 4).

  $ dsm-sim explain -n 3 --ops 20 --seed 4 --latency exp:10
  workload: workload(n=3, m=8, ops/proc=20, writes=50%, think=exp(mean=10), vars=uniform, seed=4)
  protocol: OptP
  
  w2#3 on x5 at p1: necessary delay — buffered at t=15.4 waiting for w2#2; missing at receipt: {w2#2}; applied at t=24.9 (+9.5) [witnessed]
  w2#8 on x3 at p1: necessary delay — buffered at t=55.6 waiting for w2#7; missing at receipt: {w2#7}; applied at t=69.9 (+14.4) [witnessed]
  w3#2 on x1 at p2: necessary delay — buffered at t=38.4 waiting for w3#1; missing at receipt: {w3#1}; applied at t=62.7 (+24.3) [witnessed]
  w1#6 on x2 at p2: necessary delay — buffered at t=67.4 waiting for w1#5; missing at receipt: {w1#5}; applied at t=74.9 (+7.5) [witnessed]
  w2#6 on x6 at p3: necessary delay — buffered at t=42.8 waiting for w2#5; missing at receipt: {w2#5}; applied at t=47.1 (+4.3) [witnessed]
  w2#8 on x3 at p3: necessary delay — buffered at t=56.9 waiting for w2#7; missing at receipt: {w2#7}; applied at t=60.6 (+3.7) [witnessed]
  w2#12 on x2 at p3: necessary delay — buffered at t=125.6 waiting for w2#11; missing at receipt: {w2#11}; applied at t=125.7 (+0.1) [witnessed]
  delays: 7 total, 7 necessary, 0 unnecessary; provenance: 7 attributed, 7 witnessed

ANBKH on a wider workload exhibits false causality: delays whose
claimed predecessor the checker refutes. ANBKH does not claim Theorem 4
optimality, so the exit code stays 0.

  $ dsm-sim explain --protocol anbkh -n 4 --ops 40 --seed 3 \
  >   --latency uniform:1,80 | grep -c 'UNNECESSARY'
  5
  $ dsm-sim explain --protocol anbkh -n 4 --ops 40 --seed 3 \
  >   --latency uniform:1,80 | tail -n 1; echo "exit: $?"
  delays: 76 total, 71 necessary, 5 unnecessary; provenance: 76 attributed, 70 witnessed
  exit: 0

Explain also runs the fault-campaign path.

  $ dsm-sim explain -n 4 --ops 20 --seed 5 --latency exp:10 \
  >   --crash 2@120:320 > /dev/null 2>&1; echo "exit: $?"
  exit: 0
