(* Unit tests for the counter-indexed delivery buffer, driven the way
   the protocols drive it: a little harness keeps an apply vector and a
   status oracle shaped exactly like OptP's wait condition (sender gap
   + cross-process coverage), applies ready messages, and reports every
   counter advance through [note_advance]. *)

module Di = Dsm_sim.Delivery_index
module Mailbox = Dsm_sim.Mailbox

(* a toy message: issued by [src] with sequence [seq], additionally
   requiring counter [dep_proc] >= [dep_count] *)
type msg = { src : int; seq : int; dep : (int * int) option; tag : string }

type harness = { apply : int array; buf : msg Di.t }

let make_harness n = { apply = Array.make n 0; buf = Di.create () }

let status h (m : msg) : Di.status =
  if h.apply.(m.src) < m.seq - 1 then
    Di.Wait_for { counter = m.src; count = m.seq - 1 }
  else if h.apply.(m.src) > m.seq - 1 then Di.Stuck
  else
    match m.dep with
    | Some (k, c) when h.apply.(k) < c -> Di.Wait_for { counter = k; count = c }
    | _ -> Di.Ready

(* deliver one message directly (the "receive was deliverable" path),
   then drain the buffer to fixpoint, returning tags in apply order *)
let apply_and_drain h (m : msg) =
  let tick src =
    h.apply.(src) <- h.apply.(src) + 1;
    Di.note_advance h.buf ~status:(status h) ~counter:src
      ~count:h.apply.(src)
  in
  let applied = ref [ m.tag ] in
  tick m.src;
  let rec go () =
    match Di.take_ready h.buf ~status:(status h) with
    | Some m' ->
        applied := m'.tag :: !applied;
        tick m'.src;
        go ()
    | None -> ()
  in
  go ();
  List.rev !applied

let msg ?dep ~src ~seq tag = { src; seq; dep; tag }

let check_tags = Alcotest.(check (list string))

(* ------------------------------------------------------------------ *)

let test_empty () =
  let h = make_harness 2 in
  Alcotest.(check (option string))
    "take on empty" None
    (Option.map (fun m -> m.tag) (Di.take_ready h.buf ~status:(status h)));
  Alcotest.(check int) "length" 0 (Di.length h.buf);
  Alcotest.(check bool) "is_empty" true (Di.is_empty h.buf);
  Di.note_advance h.buf ~status:(status h) ~counter:0 ~count:1;
  Alcotest.(check int) "note_advance on empty is harmless" 0
    (Di.length h.buf)

let test_single_source_chain () =
  (* the cascade case: seqs 2..6 buffered out of order, then seq 1
     arrives and everything unblocks, one wakeup per apply, in
     per-source FIFO order *)
  let h = make_harness 1 in
  List.iter
    (fun s -> Di.add h.buf ~status:(status h) (msg ~src:0 ~seq:s (string_of_int s)))
    [ 4; 2; 6; 3; 5 ];
  Alcotest.(check int) "all buffered" 5 (Di.length h.buf);
  Alcotest.(check (option string))
    "nothing ready before the gap fills" None
    (Option.map (fun m -> m.tag) (Di.take_ready h.buf ~status:(status h)));
  let order = apply_and_drain h (msg ~src:0 ~seq:1 "1") in
  check_tags "chained unblocking" [ "1"; "2"; "3"; "4"; "5"; "6" ] order;
  Alcotest.(check int) "buffer drained" 0 (Di.length h.buf)

let test_oldest_ready_first () =
  (* two sources ready simultaneously: insertion order (oldest first)
     must win, matching Mailbox.take_first *)
  let h = make_harness 3 in
  (* both blocked on source 2 reaching 1 *)
  Di.add h.buf ~status:(status h) (msg ~src:0 ~seq:1 ~dep:(2, 1) "b");
  Di.add h.buf ~status:(status h) (msg ~src:1 ~seq:1 ~dep:(2, 1) "c");
  let order = apply_and_drain h (msg ~src:2 ~seq:1 "a") in
  check_tags "oldest ready first" [ "a"; "b"; "c" ] order

let test_cross_source_cascade () =
  (* delivery of one message enables a chain that hops across sources:
     src1#1 -> src0#2 (dep on src1) -> src2#1 (dep on src0=2) *)
  let h = make_harness 3 in
  h.apply.(0) <- 1 (* src0#1 already applied *);
  Di.add h.buf ~status:(status h) (msg ~src:2 ~seq:1 ~dep:(0, 2) "third");
  Di.add h.buf ~status:(status h) (msg ~src:0 ~seq:2 ~dep:(1, 1) "second");
  let order = apply_and_drain h (msg ~src:1 ~seq:1 "first") in
  check_tags "cross-source cascade" [ "first"; "second"; "third" ] order

let test_re_registration () =
  (* a message blocked on two constraints re-subscribes after the first
     fires, and only completes when the second does *)
  let h = make_harness 3 in
  Di.add h.buf ~status:(status h) (msg ~src:0 ~seq:2 ~dep:(1, 1) "w");
  (* fill the sender gap: constraint moves from (0,1) to (1,1) *)
  let order1 = apply_and_drain h (msg ~src:0 ~seq:1 "gap") in
  check_tags "still blocked on the dep" [ "gap" ] order1;
  Alcotest.(check int) "still buffered" 1 (Di.length h.buf);
  let order2 = apply_and_drain h (msg ~src:1 ~seq:1 "dep") in
  check_tags "released by the dep" [ "dep"; "w" ] order2

let test_stuck_is_parked () =
  (* a duplicate whose sequence the counter has passed is never
     returned but still occupies the buffer, like the seed Mailbox *)
  let h = make_harness 2 in
  h.apply.(0) <- 3;
  Di.add h.buf ~status:(status h) (msg ~src:0 ~seq:2 "dup");
  Alcotest.(check int) "parked, still counted" 1 (Di.length h.buf);
  let order = apply_and_drain h (msg ~src:0 ~seq:4 "live") in
  check_tags "dup never applied" [ "live" ] order;
  Alcotest.(check int) "dup still parked" 1 (Di.length h.buf)

let test_remove_all () =
  let h = make_harness 2 in
  List.iter
    (fun s ->
      Di.add h.buf ~status:(status h) (msg ~src:0 ~seq:s (string_of_int s)))
    [ 2; 3; 4; 5 ];
  let removed = Di.remove_all h.buf ~f:(fun m -> m.seq mod 2 = 0) in
  check_tags "removed oldest-first" [ "2"; "4" ]
    (List.map (fun m -> m.tag) removed);
  Alcotest.(check int) "two left" 2 (Di.length h.buf);
  (* a removed message's subscription must not resurrect it *)
  let order = apply_and_drain h (msg ~src:0 ~seq:1 "1") in
  check_tags "removed seq 2 stays gone; 3 unreachable" [ "1" ] order;
  Alcotest.(check (list string))
    "survivors intact" [ "3"; "5" ]
    (List.map (fun m -> m.tag) (Di.to_list h.buf))

let test_occupancy_stats () =
  let h = make_harness 2 in
  List.iter
    (fun s ->
      Di.add h.buf ~status:(status h) (msg ~src:0 ~seq:s (string_of_int s)))
    [ 2; 3; 4 ];
  Alcotest.(check int) "high watermark" 3 (Di.high_watermark h.buf);
  Alcotest.(check int) "total" 3 (Di.total_buffered h.buf);
  ignore (apply_and_drain h (msg ~src:0 ~seq:1 "1"));
  Alcotest.(check int) "high watermark sticks" 3 (Di.high_watermark h.buf);
  Alcotest.(check int) "total is monotone" 3 (Di.total_buffered h.buf);
  Di.add h.buf ~status:(status h) (msg ~src:1 ~seq:2 "x");
  Alcotest.(check int) "total counts re-adds" 4 (Di.total_buffered h.buf);
  Di.clear h.buf;
  Alcotest.(check int) "clear empties" 0 (Di.length h.buf);
  Alcotest.(check int) "clear keeps stats" 3 (Di.high_watermark h.buf)

(* ------------------------------------------------------------------ *)
(* structure-level differential: random add/advance scripts against a
   Mailbox driven by the same status oracle                            *)
(* ------------------------------------------------------------------ *)

let test_differential_vs_mailbox () =
  let n = 4 in
  List.iter
    (fun seed ->
      let rng = Dsm_sim.Rng.create seed in
      let apply_i = Array.make n 0 and apply_m = Array.make n 0 in
      let idx = Di.create () and mb = Mailbox.create () in
      let status_of apply (m : msg) : Di.status =
        if apply.(m.src) < m.seq - 1 then
          Di.Wait_for { counter = m.src; count = m.seq - 1 }
        else if apply.(m.src) > m.seq - 1 then Di.Stuck
        else
          match m.dep with
          | Some (k, c) when apply.(k) < c ->
              Di.Wait_for { counter = k; count = c }
          | _ -> Di.Ready
      in
      (* per-source next sequence number to issue *)
      let next_seq = Array.make n 1 in
      (* a random script: mostly adds (sequences issued in order per
         source but buffered immediately, i.e. "arrived early"), with
         interleaved applies of whatever is ready *)
      for _ = 1 to 200 do
        if Dsm_sim.Rng.bool rng then begin
          let src = Dsm_sim.Rng.int rng n in
          let seq = next_seq.(src) in
          next_seq.(src) <- seq + 1;
          let dep =
            if Dsm_sim.Rng.bool rng then
              Some (Dsm_sim.Rng.int rng n, Dsm_sim.Rng.int rng 5)
            else None
          in
          let m = { src; seq; dep; tag = Printf.sprintf "%d#%d" src seq } in
          Di.add idx ~status:(status_of apply_i) m;
          Mailbox.add mb m
        end
        else begin
          (* drain both to fixpoint and require identical apply order *)
          let drain_idx () =
            let rec go acc =
              match Di.take_ready idx ~status:(status_of apply_i) with
              | Some m ->
                  apply_i.(m.src) <- apply_i.(m.src) + 1;
                  Di.note_advance idx ~status:(status_of apply_i)
                    ~counter:m.src ~count:apply_i.(m.src);
                  go (m.tag :: acc)
              | None -> List.rev acc
            in
            go []
          in
          let drain_mb () =
            let rec go acc =
              match
                Mailbox.take_first mb ~f:(fun m ->
                    status_of apply_m m = Di.Ready)
              with
              | Some m ->
                  apply_m.(m.src) <- apply_m.(m.src) + 1;
                  go (m.tag :: acc)
              | None -> List.rev acc
            in
            go []
          in
          check_tags
            (Printf.sprintf "seed %d: identical drain order" seed)
            (drain_mb ()) (drain_idx ());
          Alcotest.(check int)
            (Printf.sprintf "seed %d: identical occupancy" seed)
            (Mailbox.length mb) (Di.length idx)
        end
      done;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: identical high watermark" seed)
        (Mailbox.high_watermark mb)
        (Di.high_watermark idx);
      Alcotest.(check int)
        (Printf.sprintf "seed %d: identical total" seed)
        (Mailbox.total_buffered mb)
        (Di.total_buffered idx);
      check_tags
        (Printf.sprintf "seed %d: identical leftovers" seed)
        (List.map (fun m -> m.tag) (Mailbox.to_list mb))
        (List.map (fun m -> m.tag) (Di.to_list idx)))
    (List.init 25 (fun i -> i + 1))

let () =
  Alcotest.run "delivery_index"
    [
      ( "index",
        [
          Alcotest.test_case "empty buffer" `Quick test_empty;
          Alcotest.test_case "single-source chained unblocking" `Quick
            test_single_source_chain;
          Alcotest.test_case "oldest ready first" `Quick
            test_oldest_ready_first;
          Alcotest.test_case "cross-source cascade" `Quick
            test_cross_source_cascade;
          Alcotest.test_case "re-registration across constraints" `Quick
            test_re_registration;
          Alcotest.test_case "stuck messages are parked" `Quick
            test_stuck_is_parked;
          Alcotest.test_case "remove_all cancels subscriptions" `Quick
            test_remove_all;
          Alcotest.test_case "occupancy statistics" `Quick
            test_occupancy_stats;
          Alcotest.test_case "differential vs Mailbox (25 scripts)" `Quick
            test_differential_vs_mailbox;
        ] );
    ]
