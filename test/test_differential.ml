(* Differential testing: the indexed delivery buffer against the seed
   scanning Mailbox.

   Every protocol is compiled twice — [P] over [Delivery_buffer.Indexed]
   and [P.Scan] over the seed [Mailbox] — and both are driven through
   the full simulator on the same workload, network and seed. The two
   instantiations must be indistinguishable: identical histories (every
   read returns the same write), identical per-process apply sequences,
   identical delayed-apply sets, and identical buffer statistics.

   Seeds sweep three network regimes: heavy reordering (high-variance
   lognormal latency), lossy links (drops leave messages buffered
   forever on some replicas), and duplicating links (duplicates
   exercise the index's stuck-message parking). *)

module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Network = Dsm_sim.Network
module Engine = Dsm_sim.Engine
module Sim_run = Dsm_runtime.Sim_run
module Execution = Dsm_runtime.Execution
module History = Dsm_memory.History
module Replication = Dsm_core.Replication
module Partial_run = Dsm_runtime.Partial_run

let params_of_seed seed =
  let rng = Dsm_sim.Rng.create (seed * 7919) in
  let n = 2 + Dsm_sim.Rng.int rng 5 in
  let ratio = 0.2 +. (0.1 *. float_of_int (Dsm_sim.Rng.int rng 8)) in
  let sigma = 0.2 *. float_of_int (Dsm_sim.Rng.int rng 11) in
  let faults =
    (* sweep the three regimes deterministically *)
    match seed mod 3 with
    | 0 -> Network.no_faults
    | 1 -> { Network.drop = 0.15; duplicate = 0.; corrupt = 0. }
    | _ -> { Network.drop = 0.; duplicate = 0.25; corrupt = 0. }
  in
  (n, ratio, sigma, faults)

let run_one (module P : Dsm_core.Protocol.S) ?(queue = Engine.Indexed)
    ?(arena = true) ?(batch = false) ?(observe = false) ~seed () =
  let n, ratio, sigma, faults = params_of_seed seed in
  let spec =
    Spec.make ~n ~m:4 ~ops_per_process:40 ~write_ratio:ratio
      ~think:(Latency.Exponential { mean = 5. })
      ~seed ()
  in
  let latency =
    Latency.Lognormal { mu = log 10. -. (sigma *. sigma /. 2.); sigma }
  in
  if observe then begin
    (* the full observability stack: live registry, wire accountant,
       flight recorder — all pure reads of the run *)
    let metrics = Dsm_obs.Metrics.create () in
    let wire = Dsm_obs.Wire.create ~proto:P.name ~n () in
    let recorder = Dsm_obs.Timeseries.create ~metrics () in
    Sim_run.run (module P) ~spec ~latency ~faults ~seed:(seed + 1) ~queue
      ~arena ~batch ~metrics ~wire ~recorder ()
  end
  else
    Sim_run.run (module P) ~spec ~latency ~faults ~seed:(seed + 1) ~queue
      ~arena ~batch ()

let same_outcome name seed (o1 : Sim_run.outcome) (o2 : Sim_run.outcome) =
  let ctx fmt = Printf.sprintf ("%s seed %d: " ^^ fmt) name seed in
  Alcotest.(check bool)
    (ctx "identical histories (reads and writes)")
    true
    (History.ops o1.Sim_run.history = History.ops o2.Sim_run.history);
  let n = Execution.n_processes o1.Sim_run.execution in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (ctx "identical apply sequence at p%d" (p + 1))
        true
        (Execution.apply_order o1.Sim_run.execution p
        = Execution.apply_order o2.Sim_run.execution p))
    (List.init n Fun.id);
  Alcotest.(check bool)
    (ctx "identical delayed-apply sets")
    true
    (Execution.delayed_applies o1.Sim_run.execution
    = Execution.delayed_applies o2.Sim_run.execution);
  Alcotest.(check (array int))
    (ctx "identical buffer high watermarks")
    o1.Sim_run.buffer_high_watermarks o2.Sim_run.buffer_high_watermarks;
  Alcotest.(check (array int))
    (ctx "identical total-buffered counts")
    o1.Sim_run.total_buffered o2.Sim_run.total_buffered;
  Alcotest.(check int)
    (ctx "identical skip counts")
    o1.Sim_run.skipped_writes o2.Sim_run.skipped_writes

let seeds count = List.init count (fun i -> i + 1)

(* the acceptance sweep: >= 100 seeds each for OptP and ANBKH *)
let test_optp () =
  List.iter
    (fun seed ->
      same_outcome "OptP" seed
        (run_one (module Dsm_core.Opt_p) ~seed ())
        (run_one (module Dsm_core.Opt_p.Scan) ~seed ()))
    (seeds 100)

let test_anbkh () =
  List.iter
    (fun seed ->
      same_outcome "ANBKH" seed
        (run_one (module Dsm_core.Anbkh) ~seed ())
        (run_one (module Dsm_core.Anbkh.Scan) ~seed ()))
    (seeds 100)

(* the writing-semantics variant exercises remove_all / to_list and the
   skip-path counter advances *)
let test_optp_ws () =
  List.iter
    (fun seed ->
      same_outcome "OptP-WS" seed
        (run_one (module Dsm_core.Opt_p_ws) ~seed ())
        (run_one (module Dsm_core.Opt_p_ws.Scan) ~seed ()))
    (seeds 40)

(* partial replication exercises the flattened matrix counter space *)
let test_partial () =
  List.iter
    (fun seed ->
      let n = 4 + (seed mod 3) and m = 6 in
      let replication = Replication.ring ~n ~m ~degree:2 in
      let spec =
        Spec.make ~n ~m ~ops_per_process:30 ~write_ratio:0.5
          ~think:(Latency.Exponential { mean = 5. })
          ~seed ()
      in
      let latency = Latency.Uniform { lo = 1.; hi = 120. } in
      let o1 =
        Partial_run.run ~replication ~spec ~latency ~seed:(seed + 1) ()
      in
      let o2 =
        Partial_run.run_scan ~replication ~spec ~latency ~seed:(seed + 1) ()
      in
      let ctx fmt =
        Printf.sprintf ("OptP-partial seed %d: " ^^ fmt) seed
      in
      Alcotest.(check bool)
        (ctx "identical histories") true
        (History.ops o1.Partial_run.history = History.ops o2.Partial_run.history);
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (ctx "identical apply sequence at p%d" (p + 1))
            true
            (Execution.apply_order o1.Partial_run.execution p
            = Execution.apply_order o2.Partial_run.execution p))
        (List.init n Fun.id);
      Alcotest.(check (array int))
        (ctx "identical buffer high watermarks")
        o1.Partial_run.buffer_high_watermarks
        o2.Partial_run.buffer_high_watermarks)
    (seeds 30)

(* Engine-machinery variants: the same 270-seed sweep must be
   insensitive to which event queue backs the engine (flat indexed heap
   vs the reference pairing heap) and to whether delivery envelopes go
   through the recycling arena or are freshly allocated. All four
   {queue} x {arena} configurations run the identical simulation —
   identical RNG draws, identical event order — so every observable in
   [same_outcome] must match the baseline bit for bit. *)

let engine_variants =
  [
    ("indexed*alloc", Engine.Indexed, false);
    ("heap*arena", Engine.Heap, true);
    ("heap*alloc", Engine.Heap, false);
  ]

let test_variants (module P : Dsm_core.Protocol.S) name count () =
  List.iter
    (fun seed ->
      let base = run_one (module P) ~seed () in
      List.iter
        (fun (vname, queue, arena) ->
          same_outcome
            (Printf.sprintf "%s[%s]" name vname)
            seed base
            (run_one (module P) ~queue ~arena ~seed ()))
        engine_variants)
    (seeds count)

let test_variants_partial () =
  List.iter
    (fun seed ->
      let n = 4 + (seed mod 3) and m = 6 in
      let replication = Replication.ring ~n ~m ~degree:2 in
      let spec =
        Spec.make ~n ~m ~ops_per_process:30 ~write_ratio:0.5
          ~think:(Latency.Exponential { mean = 5. })
          ~seed ()
      in
      let latency = Latency.Uniform { lo = 1.; hi = 120. } in
      let base =
        Partial_run.run ~replication ~spec ~latency ~seed:(seed + 1) ()
      in
      List.iter
        (fun (vname, queue, arena) ->
          let o =
            Partial_run.run ~replication ~spec ~latency ~seed:(seed + 1)
              ~queue ~arena ()
          in
          let ctx fmt =
            Printf.sprintf
              ("OptP-partial[%s] seed %d: " ^^ fmt)
              vname seed
          in
          Alcotest.(check bool)
            (ctx "identical histories") true
            (History.ops base.Partial_run.history
            = History.ops o.Partial_run.history);
          Alcotest.(check int)
            (ctx "identical engine step counts")
            base.Partial_run.engine_steps o.Partial_run.engine_steps)
        engine_variants)
    (seeds 30)

(* Delivery batching coalesces same-edge deliveries behind one wakeup.
   It may permute same-instant deliveries across DISTINCT edges — a
   measure-zero event under the continuous latency laws used here — so
   on this sweep the batched run must reproduce the unbatched outcome
   exactly (engine step counts differ: wakeups replace per-envelope
   events; [same_outcome] compares semantics, not step counts). *)
let test_batched_parity (module P : Dsm_core.Protocol.S) name count () =
  List.iter
    (fun seed ->
      same_outcome
        (Printf.sprintf "%s[batched]" name)
        seed
        (run_one (module P) ~seed ())
        (run_one (module P) ~batch:true ~seed ()))
    (seeds count)

(* Observation parity: arming the wire accountant, the flight recorder
   and a live metrics registry must not move the run. The accountant
   prices frames without touching the RNG, and recorder scrapes are
   extra engine events whose callbacks only read the registry — so the
   same seed sweep as above must reproduce every semantic observable
   exactly (engine step counts legitimately differ: scrape ticks add
   events). *)

let test_observed (module P : Dsm_core.Protocol.S) name count () =
  List.iter
    (fun seed ->
      same_outcome
        (Printf.sprintf "%s[observed]" name)
        seed
        (run_one (module P) ~seed ())
        (run_one (module P) ~observe:true ~seed ()))
    (seeds count)

let test_observed_partial () =
  List.iter
    (fun seed ->
      let n = 4 + (seed mod 3) and m = 6 in
      let replication = Replication.ring ~n ~m ~degree:2 in
      let spec =
        Spec.make ~n ~m ~ops_per_process:30 ~write_ratio:0.5
          ~think:(Latency.Exponential { mean = 5. })
          ~seed ()
      in
      let latency = Latency.Uniform { lo = 1.; hi = 120. } in
      let base =
        Partial_run.run ~replication ~spec ~latency ~seed:(seed + 1) ()
      in
      let metrics = Dsm_obs.Metrics.create () in
      let wire = Dsm_obs.Wire.create ~proto:"OptP-partial" ~n () in
      let recorder = Dsm_obs.Timeseries.create ~metrics () in
      let o =
        Partial_run.run ~replication ~spec ~latency ~seed:(seed + 1)
          ~metrics ~wire ~recorder ()
      in
      let ctx fmt =
        Printf.sprintf ("OptP-partial[observed] seed %d: " ^^ fmt) seed
      in
      Alcotest.(check bool)
        (ctx "identical histories") true
        (History.ops base.Partial_run.history
        = History.ops o.Partial_run.history);
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (ctx "identical apply sequence at p%d" (p + 1))
            true
            (Execution.apply_order base.Partial_run.execution p
            = Execution.apply_order o.Partial_run.execution p))
        (List.init n Fun.id);
      Alcotest.(check (array int))
        (ctx "identical buffer high watermarks")
        base.Partial_run.buffer_high_watermarks
        o.Partial_run.buffer_high_watermarks;
      Alcotest.(check int)
        (ctx "identical message counts")
        base.Partial_run.messages_sent o.Partial_run.messages_sent)
    (seeds 30)

(* The churn campaign generalizes the fault campaign; on a churn-free
   plan it must be not just equivalent but byte-identical — same RNG
   consumption, same event scheduling, same wire traffic. Any drift
   here means dynamic membership changed static-membership behavior,
   which PR 2's pinned cram outputs (and physics) forbid. Plans sweep
   no-fault, crash/recover and crash+partition regimes; every crashed
   process recovers, so both harnesses report the same replica set. *)

module Fault_campaign = Dsm_runtime.Fault_campaign
module Churn_campaign = Dsm_runtime.Churn_campaign
module Fault_plan = Dsm_sim.Fault_plan

let test_churn_free_parity () =
  List.iter
    (fun seed ->
      let n = 3 + (seed mod 3) in
      let spec =
        Spec.make ~n ~m:3 ~ops_per_process:30 ~write_ratio:0.5
          ~think:(Latency.Exponential { mean = 10. })
          ~seed ()
      in
      let latency = Latency.Exponential { mean = 8. } in
      let faults =
        if seed mod 2 = 0 then Network.no_faults
        else { Network.drop = 0.1; duplicate = 0.05; corrupt = 0. }
      in
      let plan =
        match seed mod 3 with
        | 0 -> Fault_plan.make []
        | 1 ->
            Fault_plan.random
              (Dsm_sim.Rng.create (31 * seed))
              ~n ~horizon:300. ~crashes:1 ~partitions:0 ()
        | _ ->
            Fault_plan.random
              (Dsm_sim.Rng.create (31 * seed))
              ~n ~horizon:300. ~crashes:1 ~partitions:1 ()
      in
      let of_ =
        Fault_campaign.run
          (module Dsm_core.Opt_p)
          ~spec ~latency ~faults ~plan ~seed ()
      in
      let oc =
        Churn_campaign.run
          (module Dsm_core.Opt_p)
          ~spec ~latency ~faults ~plan ~initial:n ~seed ()
      in
      let ctx fmt =
        Printf.sprintf ("churn-free parity seed %d: " ^^ fmt) seed
      in
      Alcotest.(check bool)
        (ctx "identical event logs")
        true
        (Execution.events of_.Fault_campaign.execution
        = Execution.events oc.Churn_campaign.execution);
      Alcotest.(check bool)
        (ctx "identical histories")
        true
        (History.ops of_.Fault_campaign.history
        = History.ops oc.Churn_campaign.history);
      Alcotest.(check bool)
        (ctx "identical final replica states")
        true
        (of_.Fault_campaign.final_states = oc.Churn_campaign.final_states);
      Alcotest.(check int)
        (ctx "identical frame counts")
        of_.Fault_campaign.frames_sent oc.Churn_campaign.frames_sent;
      Alcotest.(check int)
        (ctx "identical retransmissions")
        of_.Fault_campaign.retransmissions oc.Churn_campaign.retransmissions;
      Alcotest.(check int)
        (ctx "identical engine step counts")
        of_.Fault_campaign.engine_steps oc.Churn_campaign.engine_steps;
      Alcotest.(check bool) (ctx "both clean") true
        (of_.Fault_campaign.clean && oc.Churn_campaign.clean))
    (seeds 12)

let () =
  Alcotest.run "differential"
    [
      ( "indexed buffer == seed mailbox",
        [
          Alcotest.test_case "OptP, 100 seeds" `Quick test_optp;
          Alcotest.test_case "ANBKH, 100 seeds" `Quick test_anbkh;
          Alcotest.test_case "OptP-WS, 40 seeds" `Quick test_optp_ws;
          Alcotest.test_case "OptP-partial, 30 seeds" `Quick test_partial;
        ] );
      ( "queue x arena variants",
        [
          Alcotest.test_case "OptP, 100 seeds x 3 variants" `Quick
            (test_variants (module Dsm_core.Opt_p) "OptP" 100);
          Alcotest.test_case "ANBKH, 100 seeds x 3 variants" `Quick
            (test_variants (module Dsm_core.Anbkh) "ANBKH" 100);
          Alcotest.test_case "OptP-WS, 40 seeds x 3 variants" `Quick
            (test_variants (module Dsm_core.Opt_p_ws) "OptP-WS" 40);
          Alcotest.test_case "OptP-partial, 30 seeds x 3 variants" `Quick
            test_variants_partial;
        ] );
      ( "delivery batching parity",
        [
          Alcotest.test_case "OptP, 100 seeds" `Quick
            (test_batched_parity (module Dsm_core.Opt_p) "OptP" 100);
          Alcotest.test_case "ANBKH, 100 seeds" `Quick
            (test_batched_parity (module Dsm_core.Anbkh) "ANBKH" 100);
        ] );
      ( "observation parity: wire + recorder + live metrics",
        [
          Alcotest.test_case "OptP, 100 seeds" `Quick
            (test_observed (module Dsm_core.Opt_p) "OptP" 100);
          Alcotest.test_case "ANBKH, 100 seeds" `Quick
            (test_observed (module Dsm_core.Anbkh) "ANBKH" 100);
          Alcotest.test_case "OptP-WS, 40 seeds" `Quick
            (test_observed (module Dsm_core.Opt_p_ws) "OptP-WS" 40);
          Alcotest.test_case "OptP-partial, 30 seeds" `Quick
            test_observed_partial;
        ] );
      ( "churn campaign == fault campaign on static membership",
        [
          Alcotest.test_case "OptP, 12 plans" `Quick test_churn_free_parity;
        ] );
    ]
