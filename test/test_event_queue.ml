(* The indexed event queue against its reference.

   [Event_queue.Indexed] (the flat implicit-heap hot path) and
   [Event_queue.Heap] (the retired pairing-heap + payload-table
   implementation, kept as the differential reference) implement the
   same signature and the same contract: pops come out in strictly
   ascending [(time, seq)] — seq being global insertion order, so ties
   in time resolve to scheduling order. The property suite drives both
   through identical random op sequences (schedules with duplicate
   times from a small discrete set, interleaved pops, clears) and
   demands identical observable traces.

   The retention regression pins the tentpole's steady-state claim: a
   long schedule/pop run with a bounded number of in-flight events must
   keep the number of live payload slots bounded by that in-flight
   count (vacated cells are dummied, not retained), and [clear] must
   release every payload at once. *)

module Q = Dsm_sim.Event_queue
module Sim_time = Dsm_sim.Sim_time

let qcheck ~name ?(count = 200) gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ---------------------------------------------------------------- *)
(* random op sequences                                               *)
(* ---------------------------------------------------------------- *)

type op = Push of float | Pop | Clear

(* duplicate times on purpose: a small discrete time domain makes
   same-time collisions the common case, which is exactly where the
   (time, seq) tie-break must match the reference *)
let op_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map (fun k -> Push (float_of_int k *. 0.5)) (int_bound 8));
        (3, pure Pop);
        (1, pure Clear);
      ])

let ops_gen = QCheck2.Gen.(list_size (int_range 0 200) op_gen)

(* run one implementation through the ops, folding every observable
   into a trace string: pop results (time, seq-order payload), pop on
   empty, peek_time after each op, sizes *)
let trace (module I : Q.S) ops =
  let q = I.create () in
  let buf = Buffer.create 256 in
  let payload = ref 0 in
  List.iter
    (fun op ->
      (match op with
      | Push at ->
          incr payload;
          I.schedule q ~at:(Sim_time.of_float at) !payload;
          Buffer.add_string buf (Printf.sprintf "push%d;" !payload)
      | Pop -> (
          match I.pop q with
          | Some (t, p) ->
              Buffer.add_string buf
                (Printf.sprintf "pop%.1f:%d;" (Sim_time.to_float t) p)
          | None -> Buffer.add_string buf "pop-empty;")
      | Clear ->
          I.clear q;
          Buffer.add_string buf "clear;");
      Buffer.add_string buf
        (Printf.sprintf "size%d,peek%s;" (I.size q)
           (match I.peek_time q with
           | Some t -> Printf.sprintf "%.1f" (Sim_time.to_float t)
           | None -> "-")))
    ops;
  (* drain whatever is left: full order equivalence, not just prefix *)
  let rec drain () =
    match I.pop q with
    | Some (t, p) ->
        Buffer.add_string buf
          (Printf.sprintf "drain%.1f:%d;" (Sim_time.to_float t) p);
        drain ()
    | None -> ()
  in
  drain ();
  Buffer.contents buf

let prop_differential =
  qcheck ~name:"indexed and heap drain any schedule identically" ~count:500
    ops_gen (fun ops ->
      String.equal (trace (module Q.Indexed) ops) (trace (module Q.Heap) ops))

(* the exn/option API pair must agree with itself on both impls *)
let prop_exn_matches_option =
  qcheck ~name:"pop_exn/next_time_exn agree with pop/peek_time" ~count:200
    ops_gen (fun ops ->
      List.for_all
        (fun (module I : Q.S) ->
          let a = I.create () and b = I.create () in
          let n = ref 0 in
          List.iter
            (fun op ->
              (match op with
              | Push at ->
                  incr n;
                  I.schedule a ~at:(Sim_time.of_float at) !n;
                  I.schedule b ~at:(Sim_time.of_float at) !n
              | Pop | Clear -> ());
              if not (I.is_empty a) then begin
                let ta = I.next_time_exn a and pa = I.pop_exn a in
                match I.pop b with
                | Some (tb, pb) ->
                    if not (Sim_time.equal ta tb && pa = pb) then
                      QCheck2.Test.fail_report "exn/option disagree"
                | None -> QCheck2.Test.fail_report "option empty, exn not"
              end)
            ops;
          I.size a = I.size b)
        [ (module Q.Indexed); (module Q.Heap) ])

(* ---------------------------------------------------------------- *)
(* steady-state retention                                            *)
(* ---------------------------------------------------------------- *)

let test_retention_bounded () =
  (* a long run that never holds more than [width] events in flight:
     live payloads must track the in-flight count exactly — the
     vacated cells of the flat heap are dummied on every pop, so
     nothing the queue has popped is still reachable through it *)
  let q = Q.create () in
  let width = 16 in
  for round = 0 to 10_000 do
    Q.schedule q
      ~at:(Sim_time.of_float (float_of_int (round mod 97)))
      (round, "payload");
    if Q.size q >= width then ignore (Q.pop_exn q)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "live payloads (%d) bounded by in-flight width"
       (Q.retained_payloads q))
    true
    (Q.retained_payloads q <= width);
  Alcotest.(check int) "retained = size in steady state" (Q.size q)
    (Q.retained_payloads q);
  (* capacity settled at a small power-of-two over the width, not at
     the 10k total it saw pass through *)
  Alcotest.(check bool)
    (Printf.sprintf "capacity (%d) bounded by the high watermark"
       (Q.capacity q))
    true
    (Q.capacity q <= 64);
  (* clear releases every payload at once *)
  Q.clear q;
  Alcotest.(check int) "clear drops to zero live payloads" 0
    (Q.retained_payloads q);
  Alcotest.(check int) "clear empties" 0 (Q.size q);
  (* and scheduling after clear still works, with seq monotone (no
     stale-order resurrection) *)
  Q.schedule q ~at:(Sim_time.of_float 1.) (1, "a");
  Q.schedule q ~at:(Sim_time.of_float 1.) (2, "b");
  Alcotest.(check bool) "same-time order survives clear" true
    (match (Q.pop q, Q.pop q) with
    | Some (_, (1, _)), Some (_, (2, _)) -> true
    | _ -> false)

let test_heap_reference_retention () =
  (* the reference keeps its payload table in lockstep too — the
     differential suite depends on both impls agreeing on
     [retained_payloads] *)
  let q = Q.Heap.create () in
  for i = 0 to 999 do
    Q.Heap.schedule q ~at:(Sim_time.of_float (float_of_int (i mod 13))) i;
    if Q.Heap.size q >= 8 then ignore (Q.Heap.pop_exn q)
  done;
  Alcotest.(check int) "heap retained = size" (Q.Heap.size q)
    (Q.Heap.retained_payloads q);
  Q.Heap.clear q;
  Alcotest.(check int) "heap clear drops payloads" 0
    (Q.Heap.retained_payloads q)

let () =
  Alcotest.run "event_queue"
    [
      ( "differential",
        [ prop_differential; prop_exn_matches_option ] );
      ( "retention",
        [
          Alcotest.test_case "indexed: live payloads bounded by in-flight"
            `Quick test_retention_bounded;
          Alcotest.test_case "heap reference keeps lockstep" `Quick
            test_heap_reference_retention;
        ] );
    ]
