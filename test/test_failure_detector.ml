(* Emergent membership: phi-accrual failure detection over gossip
   heartbeats, and the suspicion-driven view-change pipeline.

   Four layers, bottom-up:
   - [Failure_detector] in isolation: arming, accrual, interval
     clamping, the heartbeat-period prior, forget, determinism;
   - an emergent campaign on a fixed seed: no scripted membership at
     all — the plan only crashes processes, the detector produces the
     whole view history (true suspicions with bounded detection
     latency, refutation-driven rejoin of the recovered slot), and the
     run stays clean with Theorem 4 accounting intact;
   - determinism: the same seed replayed gives byte-identical
     membership and suspicion histories;
   - the false-suspicion storm: a heavy-tailed network and a twitchy
     threshold, no crashes — slow-but-alive slots get suspected,
     refute by heartbeat, rejoin under a fresh incarnation, and every
     run across the sweep still ends clean with zero ghost dots and
     zero unnecessary OptP delays. *)

module Engine = Dsm_sim.Engine
module Network = Dsm_sim.Network
module Fault_plan = Dsm_sim.Fault_plan
module Sim_time = Dsm_sim.Sim_time
module Latency = Dsm_sim.Latency
module Rng = Dsm_sim.Rng
module Spec = Dsm_workload.Spec
module Fd = Dsm_runtime.Failure_detector
module Membership = Dsm_runtime.Membership
module Churn_campaign = Dsm_runtime.Churn_campaign
module Checker = Dsm_runtime.Checker

(* ---------------------------------------------------------------- *)
(* the detector in isolation                                         *)
(* ---------------------------------------------------------------- *)

let test_config_validation () =
  Alcotest.check_raises "threshold <= 0"
    (Invalid_argument "Failure_detector.config: threshold must be positive")
    (fun () -> ignore (Fd.config ~threshold:0. ()));
  Alcotest.check_raises "heartbeat_every <= 0"
    (Invalid_argument
       "Failure_detector.config: heartbeat_every must be positive")
    (fun () -> ignore (Fd.config ~heartbeat_every:(-1.) ()));
  Alcotest.check_raises "window < 2"
    (Invalid_argument "Failure_detector.config: window must be >= 2")
    (fun () -> ignore (Fd.config ~window:1 ()));
  let cfg = Fd.config () in
  Alcotest.(check (float 0.)) "default threshold" 3. cfg.Fd.threshold;
  Alcotest.(check (float 0.)) "default period" 20. cfg.Fd.heartbeat_every;
  Alcotest.check_raises "me outside universe"
    (Invalid_argument "Failure_detector.create: me outside the universe")
    (fun () -> ignore (Fd.create cfg ~universe:3 ~me:3))

let test_accrual () =
  let cfg = Fd.config ~threshold:2. ~heartbeat_every:10. ~window:8 () in
  let d = Fd.create cfg ~universe:2 ~me:0 in
  (* unarmed: no suspicion no matter the silence *)
  Alcotest.(check (float 0.)) "unarmed phi" 0. (Fd.phi d ~peer:1 ~at:1000.);
  Alcotest.(check (option (float 0.))) "unarmed last" None
    (Fd.last_heard d ~peer:1);
  (* first observation arms the clock, records no interval *)
  Fd.observe d ~peer:1 ~at:100.;
  Alcotest.(check (option (float 0.))) "armed" (Some 100.)
    (Fd.last_heard d ~peer:1);
  Alcotest.(check (float 0.)) "prior-only mean" 10. (Fd.mean_interval d ~peer:1);
  (* regular arrivals at the heartbeat period: mu = period *)
  for k = 1 to 8 do
    Fd.observe d ~peer:1 ~at:(100. +. (10. *. float_of_int k))
  done;
  Alcotest.(check (float 1e-9)) "mu at the period" 10.
    (Fd.mean_interval d ~peer:1);
  (* phi grows linearly with silence and crosses the threshold exactly
     where the accrual formula says: t = threshold * mu * ln 10 *)
  let cross = 2. *. 10. *. Float.log 10. in
  Alcotest.(check bool) "below threshold just before" false
    (Fd.suspicious d ~peer:1 ~at:(180. +. cross -. 0.1));
  Alcotest.(check bool) "suspicious at the crossing" true
    (Fd.suspicious d ~peer:1 ~at:(180. +. cross +. 0.1));
  (* monotone in silence *)
  Alcotest.(check bool) "phi monotone" true
    (Fd.phi d ~peer:1 ~at:250. > Fd.phi d ~peer:1 ~at:200.);
  (* out-of-order and self evidence are ignored *)
  Fd.observe d ~peer:1 ~at:90.;
  Alcotest.(check (option (float 0.))) "out-of-order ignored" (Some 180.)
    (Fd.last_heard d ~peer:1);
  Fd.observe d ~peer:0 ~at:500.;
  Alcotest.(check (option (float 0.))) "self ignored" None
    (Fd.last_heard d ~peer:0)

let test_clamping_and_forget () =
  let cfg = Fd.config ~threshold:3. ~heartbeat_every:10. ~window:4 () in
  let d = Fd.create cfg ~universe:2 ~me:0 in
  (* a burst of near-simultaneous arrivals must not collapse mu below
     half the heartbeat period (else any ordinary gap looks fatal) *)
  Fd.observe d ~peer:1 ~at:0.;
  for k = 1 to 10 do
    Fd.observe d ~peer:1 ~at:(float_of_int k *. 0.001)
  done;
  Alcotest.(check bool) "burst cannot collapse mu" true
    (Fd.mean_interval d ~peer:1 >= 0.5 *. 10.);
  (* one partition-length gap must not inflate mu past 4 periods *)
  Fd.observe d ~peer:1 ~at:10_000.;
  Alcotest.(check bool) "gap cannot blow up mu" true
    (Fd.mean_interval d ~peer:1 <= 4. *. 10.);
  (* forget drops the history and disarms the clock *)
  Fd.forget d ~peer:1;
  Alcotest.(check (option (float 0.))) "forgotten" None
    (Fd.last_heard d ~peer:1);
  Alcotest.(check (float 0.)) "phi disarmed" 0.
    (Fd.phi d ~peer:1 ~at:1_000_000.);
  Alcotest.(check (float 0.)) "mu back to the prior" 10.
    (Fd.mean_interval d ~peer:1)

let test_adaptive_heterogeneous_links () =
  (* one observer, two links of equal mean rate but unequal noise:
     peer 1 is metronomic (heartbeat-period arrivals), peer 2
     alternates short and long gaps around the same mean. The adaptive
     detector must (a) keep the quiet link's threshold — and hence its
     detection time — exactly at the base, and (b) raise only the noisy
     link's bar, absorbing the long half of its legitimate cadence that
     the fixed detector false-suspects on. *)
  let base = 1.5 and hb = 10. in
  let mk adaptive =
    Fd.create
      (Fd.config ~threshold:base ~heartbeat_every:hb ~window:16 ~adaptive ())
      ~universe:3 ~me:0
  in
  let fixed = mk 0. and adapt = mk 1.5 in
  (* noisy cadence: bursts of nine 5-unit gaps, then one legitimate
     40-unit silence — piggyback chatter alternating with a lull. The
     burst drags the window mean far below the lull, so the fixed
     detector's phi crosses its bar near the end of every lull. *)
  let noisy_gap k = if k mod 10 = 0 then 40. else 5. in
  let feed d =
    (* identical evidence streams into both detectors *)
    for k = 0 to 40 do
      Fd.observe d ~peer:1 ~at:(hb *. float_of_int k)
    done;
    let t2 = ref 0. in
    Fd.observe d ~peer:2 ~at:!t2;
    for k = 1 to 40 do
      t2 := !t2 +. noisy_gap k;
      Fd.observe d ~peer:2 ~at:!t2
    done;
    !t2
  in
  let end_fixed = feed fixed in
  let end_adapt = feed adapt in
  Alcotest.(check (float 0.)) "identical feeds" end_fixed end_adapt;
  (* quiet link: zero measured noise, so the adaptive bar IS the base
     bar and the two detectors cross into suspicion at the same
     silence *)
  Alcotest.(check (float 1e-9)) "quiet link: cv 0" 0.
    (Fd.interval_cv adapt ~peer:1);
  Alcotest.(check (float 1e-9)) "quiet link: threshold unchanged" base
    (Fd.effective_threshold adapt ~peer:1);
  let detection_silence d ~peer =
    (* earliest silence (0.1 steps) at which the detector suspects *)
    let last = Option.get (Fd.last_heard d ~peer) in
    let rec go s =
      if Fd.suspicious d ~peer ~at:(last +. s) then s else go (s +. 0.1)
    in
    go 0.1
  in
  Alcotest.(check (float 1e-9)) "quiet link: equal detection time"
    (detection_silence fixed ~peer:1)
    (detection_silence adapt ~peer:1);
  (* noisy link: the measured cv is real, the bar rises *)
  Alcotest.(check bool) "noisy link: positive cv" true
    (Fd.interval_cv adapt ~peer:2 > 0.3);
  Alcotest.(check bool) "noisy link: threshold raised" true
    (Fd.effective_threshold adapt ~peer:2 > base);
  (* false suspicions: probe just before each arrival of another 40
     gaps of the same cadence — every probe is legitimate silence,
     every suspicion a false alarm *)
  let false_alarms d =
    let n = ref 0 and t2 = ref end_fixed in
    for k = 41 to 80 do
      t2 := !t2 +. noisy_gap k;
      if Fd.suspicious d ~peer:2 ~at:(!t2 -. 0.5) then incr n;
      Fd.observe d ~peer:2 ~at:!t2
    done;
    !n
  in
  let ff = false_alarms fixed and fa = false_alarms adapt in
  Alcotest.(check bool)
    (Printf.sprintf "noisy link: fewer false suspicions (%d < %d)" fa ff)
    true
    (fa < ff && ff > 0);
  (* a real crash on the noisy link is still detected: silence grows
     past even the raised bar *)
  Alcotest.(check bool) "noisy link: genuine crash still detected" true
    (Fd.suspicious adapt ~peer:2
       ~at:(Option.get (Fd.last_heard adapt ~peer:2)
           +. (Fd.effective_threshold adapt ~peer:2 *. Float.log 10.
              *. (4. *. hb))
           +. 1.))

let test_detector_determinism () =
  let run () =
    let cfg = Fd.config ~threshold:2.5 ~heartbeat_every:7. ~window:6 () in
    let d = Fd.create cfg ~universe:3 ~me:0 in
    let rng = Rng.create 99 in
    let t = ref 0. in
    let acc = Buffer.create 256 in
    for _ = 1 to 200 do
      t := !t +. (25. *. Rng.float rng);
      let peer = 1 + Rng.int rng 2 in
      Fd.observe d ~peer ~at:!t;
      Buffer.add_string acc
        (Printf.sprintf "%.6f:%.6f;" (Fd.phi d ~peer:1 ~at:(!t +. 3.))
           (Fd.phi d ~peer:2 ~at:(!t +. 3.)))
    done;
    Buffer.contents acc
  in
  Alcotest.(check string) "same seed, same phi trace" (run ()) (run ())

(* ---------------------------------------------------------------- *)
(* emergent campaigns                                                *)
(* ---------------------------------------------------------------- *)

let mk_spec ~universe ~seed =
  Spec.make ~n:universe ~m:3 ~ops_per_process:25 ~write_ratio:0.5
    ~think:(Latency.Exponential { mean = 10. })
    ~seed ()

let exp_latency = Latency.Exponential { mean = 8. }

(* p1 crashes and physically recovers mid-run (the detector must both
   notice the silence and accept the refutation); p3 crashes for good
   (the detector is the only thing that can exclude it from the view) *)
let emergent_plan =
  Fault_plan.make
    [
      Fault_plan.Crash { proc = 1; at = Sim_time.of_float 120. };
      Fault_plan.Recover { proc = 1; at = Sim_time.of_float 320. };
      Fault_plan.Crash { proc = 3; at = Sim_time.of_float 200. };
    ]

let run_emergent ?(detector = Fd.config ()) ?(seed = 7) () =
  Churn_campaign.run
    (module Dsm_core.Opt_p)
    ~spec:(mk_spec ~universe:6 ~seed)
    ~latency:exp_latency ~plan:emergent_plan ~initial:6 ~detector ~seed ()

let test_emergent_fixed_seed () =
  let o = run_emergent () in
  Alcotest.(check bool) "detector recorded in the outcome" true
    (o.Churn_campaign.detector <> None);
  Alcotest.(check bool) "heartbeats flowed" true
    (o.Churn_campaign.heartbeats_sent > 0);
  (* every view change came from the detector: the plan scripted none *)
  Alcotest.(check bool) "epochs advanced without scripted churn" true
    (o.Churn_campaign.final_epoch > 0);
  Alcotest.(check bool) "view provenance covers every epoch" true
    (List.length o.Churn_campaign.view_reasons
    = o.Churn_campaign.final_epoch);
  (* both crashed slots were suspected, truly *)
  let true_susp =
    List.filter (fun s -> s.Churn_campaign.strue) o.Churn_campaign.suspicions
  in
  let suspected_slots =
    List.sort_uniq compare
      (List.map (fun s -> s.Churn_campaign.speer) true_susp)
  in
  Alcotest.(check bool) "both corpses suspected" true
    (List.mem 1 suspected_slots && List.mem 3 suspected_slots);
  (* detection latency is bounded by the accrual worst case: the
     largest silence a clamped window can demand before phi crosses *)
  let cfg = Option.get o.Churn_campaign.detector in
  let bound =
    cfg.Fd.threshold *. Float.log 10. *. (4. *. cfg.Fd.heartbeat_every)
  in
  List.iter
    (fun s ->
      match s.Churn_campaign.slatency with
      | Some l ->
          Alcotest.(check bool)
            (Printf.sprintf "p%d detection latency %.1f within %.1f"
               (s.Churn_campaign.speer + 1) l bound)
            true
            (l > 0. && l <= bound)
      | None -> ())
    true_susp;
  (* the recovered slot re-entered through refutation *)
  Alcotest.(check bool) "p2 refuted its suspicion and rejoined" true
    (o.Churn_campaign.refutations >= 1 && o.Churn_campaign.rejoins >= 1);
  Alcotest.(check bool) "p2 active at the end" true
    (List.mem 1 o.Churn_campaign.active_at_end);
  Alcotest.(check bool) "p4 excluded at the end" true
    (not (List.mem 3 o.Churn_campaign.active_at_end));
  (* the audit machinery is untouched by the emergent pipeline *)
  Alcotest.(check bool) "clean" true o.Churn_campaign.clean;
  Alcotest.(check bool) "live replicas converged" true
    o.Churn_campaign.live_equal;
  Alcotest.(check int) "zero ghost dots" 0 o.Churn_campaign.quarantine_leaks;
  Alcotest.(check int) "Theorem 4: no unnecessary delays" 0
    o.Churn_campaign.report.Checker.unnecessary_delays

let history_fingerprint o =
  let b = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Format.asprintf "%a\n" Churn_campaign.pp_view_reason r))
    o.Churn_campaign.view_reasons;
  List.iter
    (fun s ->
      Buffer.add_string b
        (Format.asprintf "%a\n" Churn_campaign.pp_suspicion s))
    o.Churn_campaign.suspicions;
  Buffer.add_string b
    (Format.asprintf "epoch=%d active=%s hb=%d@."
       o.Churn_campaign.final_epoch
       (String.concat ","
          (List.map string_of_int o.Churn_campaign.active_at_end))
       o.Churn_campaign.heartbeats_sent);
  Buffer.contents b

let test_emergent_determinism () =
  let a = history_fingerprint (run_emergent ()) in
  let b = history_fingerprint (run_emergent ()) in
  Alcotest.(check string) "byte-identical view history" a b;
  (* and a different seed genuinely moves the run *)
  let c = history_fingerprint (run_emergent ~seed:8 ()) in
  Alcotest.(check bool) "another seed differs" true (a <> c)

let test_emergent_random_sweep () =
  (* crashes are the only scripted input; every view transition is the
     detector's. 16 seeds, mixed permanent and recovered crashes —
     downtimes are drawn past the accrual worst case so the detector
     has a fair chance at every corpse. *)
  for seed = 1 to 16 do
    let rng = Rng.create (6397 * seed) in
    let victims = if seed mod 2 = 0 then [ 1; 4 ] else [ 2 ] in
    let plan =
      Fault_plan.make
        (List.concat_map
           (fun p ->
             let at = 60. +. (120. *. Rng.float rng) in
             let crash =
               Fault_plan.Crash { proc = p; at = Sim_time.of_float at }
             in
             (* half the corpses come back — long after detection *)
             if Rng.float rng < 0.5 then
               [
                 crash;
                 Fault_plan.Recover
                   {
                     proc = p;
                     at = Sim_time.of_float (at +. 200. +. (60. *. Rng.float rng));
                   };
               ]
             else [ crash ])
           victims)
    in
    let o =
      Churn_campaign.run
        (module Dsm_core.Opt_p)
        ~spec:(mk_spec ~universe:6 ~seed)
        ~latency:exp_latency ~plan ~initial:6 ~detector:(Fd.config ()) ~seed
        ()
    in
    let ctx s = Printf.sprintf "seed %d: %s" seed s in
    Alcotest.(check bool) (ctx "clean") true o.Churn_campaign.clean;
    Alcotest.(check bool) (ctx "live_equal") true o.Churn_campaign.live_equal;
    Alcotest.(check int) (ctx "zero ghost dots") 0
      o.Churn_campaign.quarantine_leaks;
    Alcotest.(check int)
      (ctx "no unnecessary delays")
      0 o.Churn_campaign.report.Checker.unnecessary_delays;
    Alcotest.(check bool)
      (ctx "crashes were detected")
      true
      (List.exists (fun s -> s.Churn_campaign.strue)
         o.Churn_campaign.suspicions)
  done

let test_emergent_rejects_scripted_churn () =
  Alcotest.check_raises "scripted churn refused in emergent mode"
    (Invalid_argument
       "Churn_campaign.run: emergent mode scripts no membership — drop the \
        Join/Leave events; crashes and partitions are the only inputs, the \
        detector produces the view history (pass ~mixed:true — the nemesis \
        driver does — to combine both)")
    (fun () ->
      ignore
        (Churn_campaign.run
           (module Dsm_core.Opt_p)
           ~spec:(mk_spec ~universe:6 ~seed:1)
           ~latency:exp_latency
           ~plan:
             (Fault_plan.make
                [ Fault_plan.Join { proc = 5; at = Sim_time.of_float 50. } ])
           ~initial:4 ~detector:(Fd.config ()) ~seed:1 ()))

(* ---------------------------------------------------------------- *)
(* false-suspicion storm                                             *)
(* ---------------------------------------------------------------- *)

let test_false_suspicion_storm () =
  (* no crash anywhere: a heavy-tailed network plus a twitchy threshold
     manufactures suspicion of slow-but-alive slots. Every suspicion is
     a false positive, every false positive must be refuted by a later
     heartbeat and survived through the rejoin path. *)
  let storms = ref 0 and refuted = ref 0 in
  for seed = 1 to 16 do
    let o =
      Churn_campaign.run
        (module Dsm_core.Opt_p)
        ~spec:(mk_spec ~universe:5 ~seed)
        ~latency:
          (Latency.Bimodal
             {
               fast = Latency.Exponential { mean = 6. };
               slow = Latency.Pareto { scale = 40.; shape = 1.3 };
               p_slow = 0.12;
             })
        ~plan:(Fault_plan.make []) ~initial:5
        ~detector:(Fd.config ~threshold:1.1 ~heartbeat_every:15. ())
        ~seed ()
    in
    let ctx s = Printf.sprintf "storm seed %d: %s" seed s in
    storms := !storms + o.Churn_campaign.false_suspicions;
    refuted := !refuted + o.Churn_campaign.refutations;
    (* nothing ever crashed, so every suspicion is false... *)
    Alcotest.(check int)
      (ctx "all suspicions false")
      (List.length o.Churn_campaign.suspicions)
      o.Churn_campaign.false_suspicions;
    (* ...and every one was refuted: nobody is excluded at the end *)
    Alcotest.(check int)
      (ctx "every suspicion refuted")
      o.Churn_campaign.false_suspicions o.Churn_campaign.refutations;
    Alcotest.(check int) (ctx "full view at the end") 5
      (List.length o.Churn_campaign.active_at_end);
    Alcotest.(check bool) (ctx "clean") true o.Churn_campaign.clean;
    Alcotest.(check bool) (ctx "live_equal") true o.Churn_campaign.live_equal;
    Alcotest.(check int) (ctx "zero ghost dots") 0
      o.Churn_campaign.quarantine_leaks;
    Alcotest.(check int)
      (ctx "no unnecessary delays")
      0 o.Churn_campaign.report.Checker.unnecessary_delays
  done;
  (* the sweep as a whole must actually have stormed, else the
     threshold is too lax to test anything *)
  Alcotest.(check bool) "the storm produced suspicions" true (!storms > 0);
  Alcotest.(check int) "and refuted them all" !storms !refuted

let test_adaptive_storm_suppression () =
  (* end-to-end: the false-suspicion storm of [test_false_suspicion_storm]
     (heavy-tailed network, twitchy threshold, zero crashes) re-run with
     the adaptive gain on. Same seeds, same workload: the per-link noise
     estimate must strictly reduce the total number of false suspicions
     across the sweep, and every run must still end clean. *)
  let sweep ~adaptive =
    let total = ref 0 in
    for seed = 1 to 8 do
      let o =
        Churn_campaign.run
          (module Dsm_core.Opt_p)
          ~spec:(mk_spec ~universe:5 ~seed)
          ~latency:
            (Latency.Bimodal
               {
                 fast = Latency.Exponential { mean = 6. };
                 slow = Latency.Pareto { scale = 40.; shape = 1.3 };
                 p_slow = 0.12;
               })
          ~plan:(Fault_plan.make []) ~initial:5
          ~detector:
            (Fd.config ~threshold:1.1 ~heartbeat_every:15. ~adaptive ())
          ~seed ()
      in
      let ctx s =
        Printf.sprintf "adaptive=%g seed %d: %s" adaptive seed s
      in
      Alcotest.(check bool) (ctx "clean") true o.Churn_campaign.clean;
      Alcotest.(check int)
        (ctx "every suspicion refuted")
        o.Churn_campaign.false_suspicions o.Churn_campaign.refutations;
      total := !total + o.Churn_campaign.false_suspicions
    done;
    !total
  in
  let off = sweep ~adaptive:0. and on = sweep ~adaptive:1. in
  Alcotest.(check bool) "the fixed threshold stormed" true (off > 0);
  Alcotest.(check bool)
    (Printf.sprintf "adaptive suppresses the storm (%d < %d)" on off)
    true (on < off)

(* ---------------------------------------------------------------- *)
(* delta state transfer                                              *)
(* ---------------------------------------------------------------- *)

let test_delta_transfer_bounded () =
  (* scripted churn with a rejoin: the sponsor cuts its log at the
     joiner's Apply vector, so the transferred entry count is bounded
     by the componentwise vector gap (one single-write message per
     missing dot) — and a rejoiner restored from a snapshot pays only
     for the gap, not the whole log *)
  let plan =
    Fault_plan.make
      [
        Fault_plan.Join { proc = 4; at = Sim_time.of_float 80. };
        Fault_plan.Crash { proc = 1; at = Sim_time.of_float 120. };
        Fault_plan.Join { proc = 1; at = Sim_time.of_float 220. };
      ]
  in
  let o =
    Churn_campaign.run
      (module Dsm_core.Opt_p)
      ~spec:(mk_spec ~universe:6 ~seed:3)
      ~latency:exp_latency ~plan ~initial:4 ~seed:3 ()
  in
  Alcotest.(check bool) "clean" true o.Churn_campaign.clean;
  let saw_rejoin = ref false and saw_fresh = ref false in
  List.iter
    (fun c ->
      let name =
        Printf.sprintf "p%d %s" (c.Churn_campaign.cproc + 1)
          (match c.Churn_campaign.ckind with
          | Churn_campaign.Fresh_join -> "fresh"
          | Churn_campaign.Rejoin -> "rejoin"
          | Churn_campaign.Recover -> "recover")
      in
      Alcotest.(check bool)
        (name ^ ": transferred entries bounded by the vector gap")
        true
        (c.Churn_campaign.transfer_writes <= c.Churn_campaign.transfer_gap);
      match c.Churn_campaign.ckind with
      | Churn_campaign.Fresh_join ->
          saw_fresh := true;
          Alcotest.(check bool) (name ^ ": bootstrap is non-empty") true
            (c.Churn_campaign.transfer_writes > 0)
      | Churn_campaign.Rejoin ->
          saw_rejoin := true;
          (* restored from a snapshot: the gap is only what it missed
             while down, strictly less than the sponsor's whole log *)
          Alcotest.(check bool)
            (name ^ ": delta strictly smaller than a full bootstrap")
            true
            (c.Churn_campaign.transfer_gap
            < o.Churn_campaign.replayed_writes
              + c.Churn_campaign.transfer_writes
            || c.Churn_campaign.transfer_writes = 0)
      | Churn_campaign.Recover -> ())
    o.Churn_campaign.catch_ups;
  Alcotest.(check bool) "exercised a fresh join" true !saw_fresh;
  Alcotest.(check bool) "exercised a rejoin" true !saw_rejoin

let () =
  Alcotest.run "failure_detector"
    [
      ( "accrual detector",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "phi accrual" `Quick test_accrual;
          Alcotest.test_case "clamping and forget" `Quick
            test_clamping_and_forget;
          Alcotest.test_case "deterministic phi trace" `Quick
            test_detector_determinism;
          Alcotest.test_case "adaptive thresholds on heterogeneous links"
            `Quick test_adaptive_heterogeneous_links;
        ] );
      ( "emergent membership",
        [
          Alcotest.test_case "fixed seed: crashes only, detector-driven view"
            `Quick test_emergent_fixed_seed;
          Alcotest.test_case "byte-identical view history on replay" `Quick
            test_emergent_determinism;
          Alcotest.test_case "random sweep, 16 seeds" `Quick
            test_emergent_random_sweep;
          Alcotest.test_case "scripted churn refused" `Quick
            test_emergent_rejects_scripted_churn;
        ] );
      ( "false-suspicion storm",
        [
          Alcotest.test_case "slow-but-alive: suspected, refuted, clean"
            `Quick test_false_suspicion_storm;
          Alcotest.test_case "adaptive gain suppresses the storm" `Quick
            test_adaptive_storm_suppression;
        ] );
      ( "delta transfer",
        [
          Alcotest.test_case "entry count bounded by the vector gap" `Quick
            test_delta_transfer_bounded;
        ] );
    ]
