(* Dynamic membership: epoch-stamped views, growable protocol state,
   incarnation quarantine, and full churn campaigns.

   Five layers, bottom-up:
   - [Membership] slot state machine: legal transitions bump the epoch,
     illegal ones raise;
   - [Protocol.S.grow] + snapshot/restore across an epoch change: a
     snapshot taken at width n restores at width n and grows to n' > n
     with implicit-zero new components, for every growable protocol;
   - [Reliable_channel] corruption healing (checksums + retransmission)
     and stale-incarnation quarantine (zombie frames acked, counted,
     never delivered);
   - a scripted churn campaign — one fresh join, one graceful leave,
     one crash-rejoin — with every verdict inspected;
   - the acceptance campaign (3 joins, 2 leaves, 1 crash-rejoin with
     observed stale-incarnation traffic) plus a randomized sweep
     asserting clean, converged, leak-free runs with OptP's Theorem 4
     accounting intact across epochs. *)

module Engine = Dsm_sim.Engine
module Network = Dsm_sim.Network
module Reliable_channel = Dsm_sim.Reliable_channel
module Fault_plan = Dsm_sim.Fault_plan
module Sim_time = Dsm_sim.Sim_time
module Latency = Dsm_sim.Latency
module Rng = Dsm_sim.Rng
module Protocol = Dsm_core.Protocol
module V = Dsm_vclock.Vector_clock
module Spec = Dsm_workload.Spec
module Membership = Dsm_runtime.Membership
module Churn_campaign = Dsm_runtime.Churn_campaign
module Checker = Dsm_runtime.Checker

let t0 = Sim_time.zero

(* ---------------------------------------------------------------- *)
(* membership slot state machine                                     *)
(* ---------------------------------------------------------------- *)

let test_membership_transitions () =
  let ms = Membership.create ~universe:6 ~initial:[ 0; 1; 2 ] () in
  Alcotest.(check int) "epoch 0" 0 (Membership.epoch ms);
  Alcotest.(check (list int)) "initial active" [ 0; 1; 2 ]
    (Membership.active ms);
  Alcotest.(check (option int)) "incarnation 0" (Some 0)
    (Membership.incarnation ms 1);
  Alcotest.(check bool) "free slot not member" false
    (Membership.is_member ms 4);
  (* fresh join *)
  Membership.join ms ~at:t0 4;
  Alcotest.(check int) "epoch bumped" 1 (Membership.epoch ms);
  Alcotest.(check (list int)) "joined" [ 0; 1; 2; 4 ] (Membership.active ms);
  Alcotest.(check (option int)) "fresh incarnation" (Some 0)
    (Membership.incarnation ms 4);
  (* crash keeps membership, drops activity *)
  Membership.crash ms ~at:t0 1;
  Alcotest.(check bool) "crashed inactive" false (Membership.is_active ms 1);
  Alcotest.(check bool) "crashed still member" true
    (Membership.is_member ms 1);
  (* plain recovery keeps the incarnation *)
  Membership.recover ms ~at:t0 1;
  Alcotest.(check (option int)) "recover keeps incarnation" (Some 0)
    (Membership.incarnation ms 1);
  (* crash-rejoin bumps it *)
  Membership.crash ms ~at:t0 2;
  Membership.join ms ~at:t0 2;
  Alcotest.(check (option int)) "rejoin bumps incarnation" (Some 1)
    (Membership.incarnation ms 2);
  (* graceful leave retires the slot *)
  Membership.leave ms ~at:t0 0;
  Alcotest.(check bool) "left inactive" false (Membership.is_active ms 0);
  Alcotest.(check bool) "left not member" false (Membership.is_member ms 0);
  Alcotest.(check bool) "left was ever member" true
    (Membership.ever_member ms 0);
  Alcotest.(check int) "six transitions, six epochs" 6 (Membership.epoch ms);
  Alcotest.(check int) "history records all" 6
    (List.length (Membership.history ms));
  (* illegal transitions raise *)
  Alcotest.check_raises "rejoin retired slot"
    (Invalid_argument "Membership.join: slot was retired by a leave")
    (fun () -> Membership.join ms ~at:t0 0);
  Alcotest.check_raises "join live member"
    (Invalid_argument "Membership.join: slot is already a live member")
    (fun () -> Membership.join ms ~at:t0 1);
  Alcotest.check_raises "leave free slot"
    (Invalid_argument "Membership.leave: slot is not a live member")
    (fun () -> Membership.leave ms ~at:t0 5);
  Alcotest.check_raises "crash free slot"
    (Invalid_argument "Membership.crash: slot is not a live member")
    (fun () -> Membership.crash ms ~at:t0 5);
  Alcotest.check_raises "recover active member"
    (Invalid_argument "Membership.recover: slot is not a crashed member")
    (fun () -> Membership.recover ms ~at:t0 1)

(* ---------------------------------------------------------------- *)
(* protocol grow + snapshot/restore across an epoch change           *)
(* ---------------------------------------------------------------- *)

let growable_protocols : (string * Protocol.packed) list =
  [
    ("OptP", Protocol.Packed (module Dsm_core.Opt_p));
    ("ANBKH", Protocol.Packed (module Dsm_core.Anbkh));
    ("OptP-WS", Protocol.Packed (module Dsm_core.Opt_p_ws));
    ("WS-recv", Protocol.Packed (module Dsm_core.Ws_receiver));
    ("OptP-direct", Protocol.Packed (module Dsm_core.Opt_p_direct));
  ]

let grow_roundtrip_one pname (pack : Protocol.packed) =
  match pack with
  | Protocol.Packed (module P) ->
      let ctx s = pname ^ ": " ^ s in
      let cfg3 = Protocol.config ~n:3 ~m:2 in
      let p0 = P.create cfg3 ~me:0 in
      ignore (P.write p0 ~var:0 ~value:7);
      ignore (P.write p0 ~var:1 ~value:8);
      (* snapshot at width 3, restore at width 3 *)
      let image = P.snapshot p0 in
      let p0' = P.restore cfg3 ~me:0 image in
      Alcotest.(check bool)
        (ctx "restore preserves applied vector")
        true
        (V.equal (P.applied_vector p0) (P.applied_vector p0'));
      (* an epoch change grows the view: width 3 -> 5 *)
      P.grow p0' ~n:5;
      Alcotest.(check int) (ctx "grown width") 5
        (V.size (P.applied_vector p0'));
      Alcotest.(check int)
        (ctx "new components are implicit zeros")
        0
        (V.get (P.applied_vector p0') 4);
      (* the old components survive the growth *)
      let grown = V.to_array (P.applied_vector p0') in
      Alcotest.(check (array int))
        (ctx "old components preserved")
        (V.to_array (P.applied_vector p0))
        (Array.sub grown 0 3);
      (* writes after the growth still work, and a snapshot taken at
         the new width restores at the new width *)
      ignore (P.write p0' ~var:0 ~value:9);
      let cfg5 = Protocol.config ~n:5 ~m:2 in
      let image5 = P.snapshot p0' in
      let p0'' = P.restore cfg5 ~me:0 image5 in
      Alcotest.(check bool)
        (ctx "post-growth snapshot round-trips")
        true
        (V.equal (P.applied_vector p0') (P.applied_vector p0''));
      (* shrinking is forbidden *)
      (try
         P.grow p0' ~n:3;
         Alcotest.fail (ctx "grow to a smaller width must raise")
       with Invalid_argument _ -> ())

let test_grow_snapshot_roundtrip () =
  List.iter (fun (pname, pack) -> grow_roundtrip_one pname pack)
    growable_protocols

let test_grow_static_topologies_refuse () =
  let cfg = Protocol.config ~n:3 ~m:2 in
  let t = Dsm_core.Ws_token.create cfg ~me:0 in
  try
    Dsm_core.Ws_token.grow t ~n:5;
    Alcotest.fail "token ring grow must raise"
  with Invalid_argument _ -> ()

(* ---------------------------------------------------------------- *)
(* channel: corruption healing and stale-incarnation quarantine      *)
(* ---------------------------------------------------------------- *)

let test_corruption_heals () =
  let engine = Engine.create () in
  let rng = Rng.create 11 in
  let net =
    Network.create ~engine ~rng ~n:2
      ~latency:(fun ~src:_ ~dst:_ -> Latency.Uniform { lo = 1.; hi = 20. })
      ~faults:{ Network.drop = 0.; duplicate = 0.; corrupt = 0.4 }
      ~mangle:Reliable_channel.corrupt_frame ()
  in
  let ch = Reliable_channel.create ~engine ~network:net ~rng () in
  let got = ref [] in
  Reliable_channel.set_handler ch 1 (fun ~src:_ ~at:_ v -> got := v :: !got);
  Reliable_channel.set_handler ch 0 (fun ~src:_ ~at:_ _ -> ());
  for i = 1 to 50 do
    Reliable_channel.send ch ~src:0 ~dst:1 i
  done;
  ignore (Engine.run engine);
  Alcotest.(check int) "all delivered exactly once" 50 (List.length !got);
  Alcotest.(check (list int))
    "each exactly once"
    (List.init 50 (fun i -> i + 1))
    (List.sort_uniq compare !got);
  Alcotest.(check bool) "corrupt frames were seen and dropped" true
    (Reliable_channel.corrupt_dropped ch > 0);
  Alcotest.(check bool) "network counted the mangles" true
    (Network.messages_corrupted net > 0)

let test_stale_incarnation_quarantine () =
  let engine = Engine.create () in
  let rng = Rng.create 12 in
  let net =
    Network.create ~engine ~rng ~n:2
      ~latency:(fun ~src:_ ~dst:_ -> Latency.Constant 10.)
      ()
  in
  let ch =
    Reliable_channel.create ~engine ~network:net ~retransmit_after:50. ()
  in
  let delivered = ref 0 in
  Reliable_channel.set_handler ch 1 (fun ~src:_ ~at:_ _ -> incr delivered);
  Reliable_channel.set_handler ch 0 (fun ~src:_ ~at:_ _ -> ());
  (* the link is cut, so the original transmissions are lost at send;
     only retransmissions can arrive *)
  Network.partition net [ [ 0 ]; [ 1 ] ];
  Reliable_channel.send ch ~src:0 ~dst:1 42;
  Reliable_channel.send ch ~src:0 ~dst:1 43;
  (* p0 "crashes and rejoins" before any frame got through: the frames
     above now belong to its previous incarnation *)
  Engine.schedule_after engine 25. (fun () ->
      Reliable_channel.bump_incarnation ch 0);
  Engine.schedule_after engine 30. (fun () -> Network.heal_all net);
  ignore (Engine.run engine);
  Alcotest.(check int) "zombie frames never delivered" 0 !delivered;
  Alcotest.(check int) "both quarantined" 2
    (Reliable_channel.stale_quarantined ch);
  (* quarantine acked the frames, so the retransmission timers died and
     the engine drained — reaching this line is the liveness assertion *)
  Alcotest.(check int) "nothing left unacked" 0 (Reliable_channel.unacked ch)

(* ---------------------------------------------------------------- *)
(* scripted churn campaign                                           *)
(* ---------------------------------------------------------------- *)

let mk_spec ~universe ~seed =
  Spec.make ~n:universe ~m:3 ~ops_per_process:25 ~write_ratio:0.5
    ~think:(Latency.Exponential { mean = 10. })
    ~seed ()

let exp_latency = Latency.Exponential { mean = 8. }

let scripted_plan =
  Fault_plan.make
    [
      (* slot 4 joins fresh at t=80 *)
      Fault_plan.Join { proc = 4; at = Sim_time.of_float 80. };
      (* slot 1 crashes at t=120 and rejoins (fresh incarnation) at 220 *)
      Fault_plan.Crash { proc = 1; at = Sim_time.of_float 120. };
      Fault_plan.Join { proc = 1; at = Sim_time.of_float 220. };
      (* slot 2 departs gracefully at t=300 *)
      Fault_plan.Leave { proc = 2; at = Sim_time.of_float 300. };
    ]

let run_scripted (module P : Protocol.S) seed =
  Churn_campaign.run
    (module P)
    ~spec:(mk_spec ~universe:6 ~seed)
    ~latency:exp_latency ~plan:scripted_plan ~initial:4 ~seed ()

let test_scripted_campaign () =
  let o = run_scripted (module Dsm_core.Opt_p) 3 in
  Alcotest.(check int) "one fresh join" 1 o.Churn_campaign.joins;
  Alcotest.(check int) "one rejoin" 1 o.Churn_campaign.rejoins;
  Alcotest.(check int) "one leave" 1 o.Churn_campaign.leaves;
  Alcotest.(check (list int)) "final view" [ 0; 1; 3; 4 ]
    o.Churn_campaign.active_at_end;
  Alcotest.(check int) "four view changes, four epochs" 4
    o.Churn_campaign.final_epoch;
  Alcotest.(check bool) "clean" true o.Churn_campaign.clean;
  Alcotest.(check bool) "live replicas converged" true
    o.Churn_campaign.live_equal;
  Alcotest.(check int) "no quarantine leaks" 0
    o.Churn_campaign.quarantine_leaks;
  Alcotest.(check int) "no safety violations" 0
    (List.length o.Churn_campaign.report.Checker.violations);
  Alcotest.(check int) "Theorem 4 across epochs: no unnecessary delays" 0
    o.Churn_campaign.report.Checker.unnecessary_delays;
  Alcotest.(check bool) "sponsor transferred state" true
    (o.Churn_campaign.transfer_bytes > 0);
  (* every catch-up episode converged *)
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "p%d catch-up converged" (c.Churn_campaign.cproc + 1))
        true
        (c.Churn_campaign.converged_at <> None))
    o.Churn_campaign.catch_ups

let test_scripted_campaign_anbkh () =
  let o = run_scripted (module Dsm_core.Anbkh) 4 in
  Alcotest.(check bool) "clean" true o.Churn_campaign.clean;
  Alcotest.(check bool) "live replicas converged" true
    o.Churn_campaign.live_equal;
  Alcotest.(check int) "no quarantine leaks" 0
    o.Churn_campaign.quarantine_leaks

(* churn plans are refused by the static harness *)
let test_fault_campaign_refuses_churn () =
  try
    ignore
      (Dsm_runtime.Fault_campaign.run
         (module Dsm_core.Opt_p)
         ~spec:(mk_spec ~universe:6 ~seed:1)
         ~latency:exp_latency ~plan:scripted_plan ());
    Alcotest.fail "Fault_campaign must refuse churn plans"
  with Invalid_argument _ -> ()

(* ---------------------------------------------------------------- *)
(* the acceptance campaign                                           *)
(* ---------------------------------------------------------------- *)

let test_acceptance_campaign () =
  (* 3 joins, 2 leaves, 1 crash-rejoin over a 12-slot universe. Lossy
     links plus a long retransmission timeout keep pre-crash frames of
     the rejoiner unacknowledged across its downtime, so their
     retransmissions arrive under the superseded incarnation and must
     be quarantined. *)
  let plan =
    Fault_plan.random_churn (Rng.create 1002) ~initial:6 ~n:12 ~horizon:400.
      ~joins:3 ~leaves:2 ~rejoins:1 ()
  in
  let o =
    Churn_campaign.run
      (module Dsm_core.Opt_p)
      ~spec:(mk_spec ~universe:12 ~seed:2)
      ~latency:exp_latency
      ~faults:{ Network.drop = 0.2; duplicate = 0.05; corrupt = 0.05 }
      ~plan ~initial:6 ~retransmit_after:60. ~seed:2 ()
  in
  Alcotest.(check int) "3 joins" 3 o.Churn_campaign.joins;
  Alcotest.(check int) "2 leaves" 2 o.Churn_campaign.leaves;
  Alcotest.(check int) "1 crash-rejoin" 1 o.Churn_campaign.rejoins;
  Alcotest.(check bool) "stale-incarnation traffic observed" true
    (o.Churn_campaign.chan_stale_quarantined > 0
    || o.Churn_campaign.net_stale_dropped > 0);
  Alcotest.(check bool) "corrupt frames observed and healed" true
    (o.Churn_campaign.corrupt_dropped > 0);
  Alcotest.(check bool) "clean across all epochs" true o.Churn_campaign.clean;
  Alcotest.(check bool) "live replicas converged" true
    o.Churn_campaign.live_equal;
  Alcotest.(check int) "zero quarantine leaks into Apply" 0
    o.Churn_campaign.quarantine_leaks;
  Alcotest.(check int) "Theorem 4: no unnecessary delays" 0
    o.Churn_campaign.report.Checker.unnecessary_delays

let sweep_one (pack : Protocol.packed) seed =
  match pack with
  | Protocol.Packed (module P) ->
      let plan =
        Fault_plan.random_churn
          (Rng.create (7919 * seed))
          ~initial:4 ~n:8 ~horizon:350.
          ~joins:(1 + (seed mod 3))
          ~leaves:(seed mod 2)
          ~rejoins:(seed mod 2)
          ()
      in
      let o =
        Churn_campaign.run
          (module P)
          ~spec:(mk_spec ~universe:8 ~seed)
          ~latency:exp_latency ~plan ~initial:4 ~seed ()
      in
      let ctx s = Printf.sprintf "%s seed %d: %s" P.name seed s in
      Alcotest.(check bool) (ctx "clean") true o.Churn_campaign.clean;
      Alcotest.(check bool) (ctx "live_equal") true o.Churn_campaign.live_equal;
      Alcotest.(check int) (ctx "no leaks") 0 o.Churn_campaign.quarantine_leaks;
      if P.name = "OptP" then
        Alcotest.(check int)
          (ctx "no unnecessary delays")
          0 o.Churn_campaign.report.Checker.unnecessary_delays

let test_random_churn_sweep () =
  List.iter
    (fun pack -> List.iter (sweep_one pack) (List.init 8 (fun i -> i + 1)))
    [
      Protocol.Packed (module Dsm_core.Opt_p);
      Protocol.Packed (module Dsm_core.Anbkh);
    ]

let () =
  Alcotest.run "membership"
    [
      ( "membership view",
        [
          Alcotest.test_case "slot state machine" `Quick
            test_membership_transitions;
        ] );
      ( "growable state",
        [
          Alcotest.test_case "grow + snapshot/restore across epochs" `Quick
            test_grow_snapshot_roundtrip;
          Alcotest.test_case "static topology refuses" `Quick
            test_grow_static_topologies_refuse;
        ] );
      ( "channel hardening",
        [
          Alcotest.test_case "corruption heals" `Quick test_corruption_heals;
          Alcotest.test_case "stale incarnation quarantine" `Quick
            test_stale_incarnation_quarantine;
        ] );
      ( "churn campaigns",
        [
          Alcotest.test_case "scripted join/leave/rejoin, OptP" `Quick
            test_scripted_campaign;
          Alcotest.test_case "scripted join/leave/rejoin, ANBKH" `Quick
            test_scripted_campaign_anbkh;
          Alcotest.test_case "fault campaign refuses churn" `Quick
            test_fault_campaign_refuses_churn;
          Alcotest.test_case "acceptance: 3 joins, 2 leaves, 1 rejoin" `Quick
            test_acceptance_campaign;
          Alcotest.test_case "random churn sweep" `Quick
            test_random_churn_sweep;
        ] );
    ]
