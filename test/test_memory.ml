(* Unit and property tests for the shared-memory formal model:
   Bitset, Operation, Local_history, History, Causal_order, Legality,
   Causality_graph, Enabling, Write_vectors. *)

module Bitset = Dsm_memory.Bitset
module Operation = Dsm_memory.Operation
module Local_history = Dsm_memory.Local_history
module History = Dsm_memory.History
module Causal_order = Dsm_memory.Causal_order
module Legality = Dsm_memory.Legality
module Causality_graph = Dsm_memory.Causality_graph
module Enabling = Dsm_memory.Enabling
module Write_vectors = Dsm_memory.Write_vectors
module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* fixtures                                                            *)
(* ------------------------------------------------------------------ *)

(* the paper's Ĥ₁ plus handles to every operation *)
let h1 () =
  let p1 = Local_history.create ~proc:0 () in
  let wa = Local_history.add_write p1 ~var:0 ~value:0 in
  let wc = Local_history.add_write p1 ~var:0 ~value:2 in
  let p2 = Local_history.create ~proc:1 () in
  let r2 =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 0)
      ~read_from:(Some wa.Operation.wdot)
  in
  let wb = Local_history.add_write p2 ~var:1 ~value:1 in
  let p3 = Local_history.create ~proc:2 () in
  let r3 =
    Local_history.add_read p3 ~var:1 ~value:(Operation.Val 1)
      ~read_from:(Some wb.Operation.wdot)
  in
  let wd = Local_history.add_write p3 ~var:1 ~value:3 in
  (History.of_locals [ p1; p2; p3 ], wa, wc, wb, wd, r2, r3)

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basics () =
  let b = Bitset.create 20 in
  check_bool "empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 7;
  Bitset.set b 19;
  check_bool "mem" true (Bitset.mem b 7);
  check_bool "not mem" false (Bitset.mem b 8);
  check_int "cardinal" 3 (Bitset.cardinal b);
  Alcotest.(check (list int)) "elements" [ 0; 7; 19 ] (Bitset.elements b);
  Bitset.clear_bit b 7;
  check_bool "cleared" false (Bitset.mem b 7)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "set oob"
    (Invalid_argument "Bitset.set: index out of bounds") (fun () ->
      Bitset.set b 8);
  Alcotest.check_raises "mem oob"
    (Invalid_argument "Bitset.mem: index out of bounds") (fun () ->
      ignore (Bitset.mem b (-1)))

let test_bitset_set_ops () =
  let a = Bitset.of_list 10 [ 1; 2; 3 ] in
  let b = Bitset.of_list 10 [ 2; 3; 4 ] in
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 2; 3; 4 ] (Bitset.elements u);
  let i = Bitset.copy a in
  Bitset.inter_into i b;
  Alcotest.(check (list int)) "inter" [ 2; 3 ] (Bitset.elements i);
  check_bool "subset" true (Bitset.is_subset i a);
  check_bool "not subset" false (Bitset.is_subset u a);
  check_bool "equal" true (Bitset.equal a (Bitset.of_list 10 [ 1; 2; 3 ]))

let prop_bitset_roundtrip =
  qcheck_case "of_list/elements roundtrip"
    QCheck2.Gen.(list_size (int_range 0 30) (int_bound 63))
    (fun l ->
      let sorted = List.sort_uniq Int.compare l in
      Bitset.elements (Bitset.of_list 64 l) = sorted)

let prop_bitset_union_cardinal =
  qcheck_case "union is an upper bound"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 20) (int_bound 31))
        (list_size (int_range 0 20) (int_bound 31)))
    (fun (la, lb) ->
      let a = Bitset.of_list 32 la and b = Bitset.of_list 32 lb in
      let u = Bitset.copy a in
      Bitset.union_into u b;
      Bitset.is_subset a u && Bitset.is_subset b u)

(* ------------------------------------------------------------------ *)
(* Operation & Local_history                                           *)
(* ------------------------------------------------------------------ *)

let test_operation_pp () =
  let w = Operation.write ~proc:0 ~seq:1 ~var:0 ~value:0 in
  Alcotest.(check string) "write" "w1(x1)a" (Operation.to_string w);
  let r =
    Operation.read ~proc:2 ~slot:0 ~var:1 ~value:(Operation.Val 3)
      ~read_from:None
  in
  Alcotest.(check string) "read" "r3(x2)d" (Operation.to_string r);
  let rb =
    Operation.read ~proc:0 ~slot:0 ~var:0 ~value:Operation.Bot
      ~read_from:None
  in
  Alcotest.(check string) "bot read" "r1(x1)⊥" (Operation.to_string rb);
  let big = Operation.write ~proc:0 ~seq:1 ~var:0 ~value:1000 in
  Alcotest.(check string) "large values numeric" "w1(x1)1000"
    (Operation.to_string big)

let test_operation_accessors () =
  let w = Operation.write ~proc:1 ~seq:2 ~var:3 ~value:7 in
  check_int "proc" 1 (Operation.proc w);
  check_int "var" 3 (Operation.var w);
  check_bool "is_write" true (Operation.is_write w);
  check_bool "as_read none" true (Operation.as_read w = None)

let test_local_history_sequencing () =
  let lh = Local_history.create ~proc:1 () in
  let w1 = Local_history.add_write lh ~var:0 ~value:1 in
  let _ =
    Local_history.add_read lh ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w1.Operation.wdot)
  in
  let w2 = Local_history.add_write lh ~var:1 ~value:2 in
  check_int "first write seq" 1 (Dot.seq w1.Operation.wdot);
  check_int "second write seq" 2 (Dot.seq w2.Operation.wdot);
  check_int "length" 3 (Local_history.length lh);
  check_int "write count" 2 (Local_history.write_count lh);
  check_int "writes list" 2 (List.length (Local_history.writes lh));
  check_bool "nth" true (Local_history.nth lh 0 = Operation.Write w1);
  Alcotest.check_raises "nth oob"
    (Invalid_argument "Local_history.nth: index out of bounds") (fun () ->
      ignore (Local_history.nth lh 5))

(* ------------------------------------------------------------------ *)
(* History                                                             *)
(* ------------------------------------------------------------------ *)

let test_history_shape () =
  let h, wa, _, wb, _, _, _ = h1 () in
  check_int "processes" 3 (History.n_processes h);
  check_int "variables" 2 (History.n_variables h);
  check_int "ops" 6 (History.op_count h);
  check_int "writes" 4 (History.write_count h);
  check_int "reads" 2 (List.length (History.reads h));
  check_bool "find wa" true
    (History.find_write h wa.Operation.wdot = Some wa);
  check_bool "find wb" true
    (History.find_write h wb.Operation.wdot = Some wb);
  check_bool "find absent" true
    (History.find_write h (Dot.make ~replica:0 ~seq:9) = None)

let test_history_validate_ok () =
  let h, _, _, _, _, _, _ = h1 () in
  check_bool "valid" true (History.validate h = Ok ())

let test_history_rejects_bad_proc_ids () =
  Alcotest.check_raises "gap in ids"
    (Invalid_argument "History.of_locals: process id 2 outside 0..1")
    (fun () ->
      ignore
        (History.of_locals
           [ Local_history.create ~proc:0 (); Local_history.create ~proc:2 () ]));
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "History.of_locals: duplicate process id 0")
    (fun () ->
      ignore
        (History.of_locals
           [ Local_history.create ~proc:0 (); Local_history.create ~proc:0 () ]))

let test_history_validation_catches_dangling () =
  let lh = Local_history.create ~proc:0 () in
  let _ =
    Local_history.add_read lh ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some (Dot.make ~replica:0 ~seq:9))
  in
  let h = History.of_locals [ lh ] in
  match History.validate h with
  | Error [ History.Dangling_read_from _ ] -> ()
  | _ -> Alcotest.fail "expected a dangling read_from violation"

let test_history_validation_catches_wrong_value () =
  let lh = Local_history.create ~proc:0 () in
  let w = Local_history.add_write lh ~var:0 ~value:5 in
  let _ =
    Local_history.add_read lh ~var:0 ~value:(Operation.Val 6)
      ~read_from:(Some w.Operation.wdot)
  in
  let h = History.of_locals [ lh ] in
  match History.validate h with
  | Error [ History.Read_from_wrong_value _ ] -> ()
  | _ -> Alcotest.fail "expected a wrong-value violation"

let test_history_validation_catches_wrong_variable () =
  let lh = Local_history.create ~proc:0 () in
  let w = Local_history.add_write lh ~var:0 ~value:5 in
  let _ =
    Local_history.add_read lh ~var:1 ~value:(Operation.Val 5)
      ~read_from:(Some w.Operation.wdot)
  in
  let h = History.of_locals [ lh ] in
  match History.validate h with
  | Error [ History.Read_from_wrong_variable _ ] -> ()
  | _ -> Alcotest.fail "expected a wrong-variable violation"

let test_history_validation_catches_bot_with_value () =
  let lh = Local_history.create ~proc:0 () in
  let _ =
    Local_history.add_read lh ~var:0 ~value:(Operation.Val 1)
      ~read_from:None
  in
  let h = History.of_locals [ lh ] in
  match History.validate h with
  | Error [ History.Bot_read_with_value _ ] -> ()
  | _ -> Alcotest.fail "expected a bot-with-value violation"

(* ------------------------------------------------------------------ *)
(* Causal_order on Ĥ₁ (the paper's Example 1, §2.1)                    *)
(* ------------------------------------------------------------------ *)

let test_co_h1_relations () =
  let h, wa, wc, wb, wd, _, _ = h1 () in
  let co = Causal_order.compute h in
  let p d1 d2 =
    Causal_order.write_precedes co d1.Operation.wdot d2.Operation.wdot
  in
  let conc d1 d2 =
    Causal_order.write_concurrent co d1.Operation.wdot d2.Operation.wdot
  in
  (* exactly the relations stated in Example 1 *)
  check_bool "a ↦co b" true (p wa wb);
  check_bool "a ↦co c" true (p wa wc);
  check_bool "b ↦co d" true (p wb wd);
  check_bool "a ↦co d (transitivity)" true (p wa wd);
  check_bool "c ∥co b" true (conc wc wb);
  check_bool "c ∥co d" true (conc wc wd);
  check_bool "no reverse" false (p wb wa);
  check_bool "irreflexive" false (p wa wa)

let test_co_reads_in_order () =
  let h, wa, _, wb, wd, r2, r3 = h1 () in
  let co = Causal_order.compute h in
  check_bool "wa ↦co r2" true
    (Causal_order.precedes co (Operation.Write wa) (Operation.Read r2));
  check_bool "r2 ↦co wb (process order)" true
    (Causal_order.precedes co (Operation.Read r2) (Operation.Write wb));
  check_bool "wa ↦co r3 (transitively)" true
    (Causal_order.precedes co (Operation.Write wa) (Operation.Read r3));
  check_bool "r3 ↦co wd" true
    (Causal_order.precedes co (Operation.Read r3) (Operation.Write wd))

let test_co_causal_past () =
  let h, wa, _, wb, wd, _, _ = h1 () in
  let co = Causal_order.compute h in
  let past = Causal_order.writes_in_past co (Operation.Write wd) in
  let dots =
    List.map (fun (w : Operation.write) -> Dot.to_string w.wdot) past
  in
  Alcotest.(check (list string))
    "past of d = {a, b}"
    [ Dot.to_string wa.Operation.wdot; Dot.to_string wb.Operation.wdot ]
    dots;
  check_int "full causal past of d (incl. reads)" 4
    (List.length (Causal_order.causal_past co (Operation.Write wd)))

let test_co_true_write_co_vectors () =
  (* Figure 6's vectors, from the formal side *)
  let h, wa, wc, wb, wd, _, _ = h1 () in
  let co = Causal_order.compute h in
  let v w = V.to_list (Causal_order.true_write_co co w) in
  Alcotest.(check (list int)) "a" [ 1; 0; 0 ] (v wa);
  Alcotest.(check (list int)) "c" [ 2; 0; 0 ] (v wc);
  Alcotest.(check (list int)) "b" [ 1; 1; 0 ] (v wb);
  Alcotest.(check (list int)) "d" [ 1; 1; 1 ] (v wd)

let test_co_related_pairs () =
  let h, _, _, _, _, _, _ = h1 () in
  let co = Causal_order.compute h in
  (* a↦b, a↦c, a↦d, b↦d *)
  check_int "four related write pairs" 4
    (List.length (Causal_order.related_write_pairs co))

let test_co_rejects_invalid_history () =
  let lh = Local_history.create ~proc:0 () in
  let _ =
    Local_history.add_read lh ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some (Dot.make ~replica:0 ~seq:9))
  in
  let h = History.of_locals [ lh ] in
  check_bool "raises" true
    (try
       ignore (Causal_order.compute h);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Legality                                                            *)
(* ------------------------------------------------------------------ *)

let test_legality_h1_consistent () =
  let h, _, _, _, _, _, _ = h1 () in
  let co = Causal_order.compute h in
  check_bool "consistent" true (Legality.is_causally_consistent co)

(* a stale read: p2 reads a from x1 although it already read c (which
   causally follows a on the same variable) *)
let test_legality_detects_stale_read () =
  let p1 = Local_history.create ~proc:0 () in
  let wa = Local_history.add_write p1 ~var:0 ~value:0 in
  let wc = Local_history.add_write p1 ~var:0 ~value:2 in
  let p2 = Local_history.create ~proc:1 () in
  let _ =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 2)
      ~read_from:(Some wc.Operation.wdot)
  in
  let _ =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 0)
      ~read_from:(Some wa.Operation.wdot)
  in
  let h = History.of_locals [ p1; p2 ] in
  let co = Causal_order.compute h in
  match Legality.check co with
  | Error [ { Legality.reason = Legality.Stale_value w'; _ } ] ->
      check_bool "interposed write is c" true
        (Dot.equal w'.Operation.wdot wc.Operation.wdot)
  | Error _ -> Alcotest.fail "expected exactly one stale-value violation"
  | Ok () -> Alcotest.fail "stale read not detected"

(* a ⊥ read after a causally preceding write on the same variable *)
let test_legality_detects_bot_after_write () =
  let p1 = Local_history.create ~proc:0 () in
  let wa = Local_history.add_write p1 ~var:0 ~value:0 in
  let p2 = Local_history.create ~proc:1 () in
  let _ =
    Local_history.add_read p2 ~var:1 ~value:Operation.Bot ~read_from:None
  in
  (* p2 reads x1=a, then reads x2=⊥: fine. Then writes x2, reads x1=⊥:
     illegal because wa ↦co that read via its own earlier read *)
  let _ =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 0)
      ~read_from:(Some wa.Operation.wdot)
  in
  let _ =
    Local_history.add_read p2 ~var:0 ~value:Operation.Bot ~read_from:None
  in
  let h = History.of_locals [ p1; p2 ] in
  let co = Causal_order.compute h in
  match Legality.check co with
  | Error [ { Legality.reason = Legality.Bot_after_write w; _ } ] ->
      check_bool "the write is a" true
        (Dot.equal w.Operation.wdot wa.Operation.wdot)
  | Error _ -> Alcotest.fail "expected exactly one bot-after-write"
  | Ok () -> Alcotest.fail "⊥ read not detected"

(* reading your own overwritten write is also stale *)
let test_legality_own_overwrite () =
  let p1 = Local_history.create ~proc:0 () in
  let w1 = Local_history.add_write p1 ~var:0 ~value:1 in
  let _w2 = Local_history.add_write p1 ~var:0 ~value:2 in
  let _ =
    Local_history.add_read p1 ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w1.Operation.wdot)
  in
  let h = History.of_locals [ p1 ] in
  let co = Causal_order.compute h in
  check_bool "illegal" false (Legality.is_causally_consistent co)

(* concurrent writes may be read in either order by different readers *)
let test_legality_concurrent_reads_diverge () =
  let p1 = Local_history.create ~proc:0 () in
  let w1 = Local_history.add_write p1 ~var:0 ~value:1 in
  let p2 = Local_history.create ~proc:1 () in
  let w2 = Local_history.add_write p2 ~var:0 ~value:2 in
  let p3 = Local_history.create ~proc:2 () in
  let _ =
    Local_history.add_read p3 ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w1.Operation.wdot)
  in
  let _ =
    Local_history.add_read p3 ~var:0 ~value:(Operation.Val 2)
      ~read_from:(Some w2.Operation.wdot)
  in
  let p4 = Local_history.create ~proc:3 () in
  let _ =
    Local_history.add_read p4 ~var:0 ~value:(Operation.Val 2)
      ~read_from:(Some w2.Operation.wdot)
  in
  let _ =
    Local_history.add_read p4 ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w1.Operation.wdot)
  in
  let h = History.of_locals [ p1; p2; p3; p4 ] in
  let co = Causal_order.compute h in
  check_bool "both orders legal (causal, not sequential!)" true
    (Legality.is_causally_consistent co)

(* ------------------------------------------------------------------ *)
(* Causality_graph (Figure 7)                                          *)
(* ------------------------------------------------------------------ *)

let test_graph_h1 () =
  let h, wa, wc, wb, wd, _, _ = h1 () in
  let co = Causal_order.compute h in
  let g = Causality_graph.compute co in
  let d (w : Operation.write) = w.Operation.wdot in
  check_int "three edges" 3 (List.length (Causality_graph.edges g));
  Alcotest.(check (list string))
    "preds of d" [ "w2#1" ]
    (List.map Dot.to_string (Causality_graph.immediate_predecessors g (d wd)));
  Alcotest.(check (list string))
    "preds of b" [ "w1#1" ]
    (List.map Dot.to_string (Causality_graph.immediate_predecessors g (d wb)));
  Alcotest.(check (list string))
    "succs of a" [ "w1#2"; "w2#1" ]
    (List.map Dot.to_string (Causality_graph.immediate_successors g (d wa)));
  Alcotest.(check (list string))
    "roots" [ "w1#1" ]
    (List.map Dot.to_string (Causality_graph.roots g));
  Alcotest.(check (list string))
    "sinks" [ "w1#2"; "w3#1" ]
    (List.map Dot.to_string (Causality_graph.sinks g));
  check_int "longest path a->b->d" 2 (Causality_graph.longest_path_length g);
  check_bool "wc is a sink" true
    (List.exists (Dot.equal (d wc)) (Causality_graph.sinks g))

let test_graph_topological () =
  let h, _, _, _, _, _, _ = h1 () in
  let co = Causal_order.compute h in
  let g = Causality_graph.compute co in
  let order = Causality_graph.topological g in
  check_int "all writes" 4 (List.length order);
  (* every write appears after its immediate predecessors *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (w : Operation.write) ->
      List.iter
        (fun p ->
          check_bool "pred before" true (Hashtbl.mem seen (Dot.to_string p)))
        (Causality_graph.immediate_predecessors g w.wdot);
      Hashtbl.replace seen (Dot.to_string w.wdot) ())
    order

let test_graph_graphviz () =
  let h, _, _, _, _, _, _ = h1 () in
  let co = Causal_order.compute h in
  let g = Causality_graph.compute co in
  let dot = Causality_graph.to_graphviz g in
  check_bool "digraph" true
    (String.length dot > 0
    && String.sub dot 0 7 = "digraph");
  check_bool "has the a->b edge" true
    (let needle = "\"w1(x1)a\" -> \"w2(x2)b\";" in
     let rec find i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || find (i + 1))
     in
     find 0)

(* a chain of writes: the graph must be exactly the chain *)
let test_graph_chain () =
  let lh = Local_history.create ~proc:0 () in
  for v = 1 to 5 do
    ignore (Local_history.add_write lh ~var:0 ~value:v)
  done;
  let h = History.of_locals [ lh ] in
  let co = Causal_order.compute h in
  let g = Causality_graph.compute co in
  check_int "chain edges" 4 (List.length (Causality_graph.edges g));
  check_int "depth" 4 (Causality_graph.longest_path_length g);
  check_int "one root" 1 (List.length (Causality_graph.roots g));
  check_int "one sink" 1 (List.length (Causality_graph.sinks g))

(* fully concurrent writes: empty graph *)
let test_graph_antichain () =
  let locals =
    List.init 4 (fun proc ->
        let lh = Local_history.create ~proc () in
        ignore (Local_history.add_write lh ~var:0 ~value:proc);
        lh)
  in
  let h = History.of_locals locals in
  let co = Causal_order.compute h in
  let g = Causality_graph.compute co in
  check_int "no edges" 0 (List.length (Causality_graph.edges g));
  check_int "all roots" 4 (List.length (Causality_graph.roots g));
  check_int "depth 0" 0 (Causality_graph.longest_path_length g)

(* ------------------------------------------------------------------ *)
(* Enabling (Tables 1 and 2)                                           *)
(* ------------------------------------------------------------------ *)

let test_enabling_table1 () =
  let h, wa, wc, wb, wd, _, _ = h1 () in
  let co = Causal_order.compute h in
  let set w k =
    Enabling.co_safe co
      { Enabling.at_proc = k; write = w.Operation.wdot }
    |> List.map Dot.to_string
  in
  (* paper Table 1, row by row (sets are process-independent here) *)
  for k = 0 to 2 do
    Alcotest.(check (list string)) "X(a) empty" [] (set wa k);
    Alcotest.(check (list string)) "X(c) = {a}" [ "w1#1" ] (set wc k);
    Alcotest.(check (list string)) "X(b) = {a}" [ "w1#1" ] (set wb k);
    Alcotest.(check (list string))
      "X(d) = {a, b}" [ "w1#1"; "w2#1" ] (set wd k)
  done

let test_enabling_anbkh_superset () =
  (* with send vectors claiming send(a) → send(c) → send(b),
     X_ANBKH(b) ⊃ X_co-safe(b) — the Table 2 situation *)
  let _h, wa, wc, wb, _, _, _ = h1 () in
  let dots =
    [ wa.Operation.wdot; wc.Operation.wdot; wb.Operation.wdot ]
  in
  let vt d =
    if Dot.equal d wa.Operation.wdot then V.of_list [ 1; 0; 0 ]
    else if Dot.equal d wc.Operation.wdot then V.of_list [ 2; 0; 0 ]
    else V.of_list [ 2; 1; 0 ] (* b's send knows both of p1's sends *)
  in
  let x_b =
    Enabling.anbkh ~send_vt:vt ~writes:dots
      { Enabling.at_proc = 2; write = wb.Operation.wdot }
    |> List.map Dot.to_string
  in
  Alcotest.(check (list string)) "X_ANBKH(b) = {a, c}" [ "w1#1"; "w1#2" ] x_b

let test_enabling_event_count () =
  let h, _, _, _, _, _, _ = h1 () in
  let co = Causal_order.compute h in
  check_int "4 writes x 3 procs" 12
    (List.length (Enabling.all_apply_events co))

(* ------------------------------------------------------------------ *)
(* Write_vectors: fast path vs dense closure                           *)
(* ------------------------------------------------------------------ *)

let test_write_vectors_match_closure_on_h1 () =
  let h, _, _, _, _, _, _ = h1 () in
  let co = Causal_order.compute h in
  let wv = Write_vectors.compute h in
  List.iter
    (fun (w : Operation.write) ->
      check_bool
        ("vectors agree for " ^ Dot.to_string w.wdot)
        true
        (V.equal
           (Causal_order.true_write_co co w)
           (Write_vectors.of_write wv w.wdot)))
    (History.writes h)

let test_write_vectors_read_past () =
  let h, _, _, _, _, _, _ = h1 () in
  let wv = Write_vectors.compute h in
  (* r3 read b, whose past is {a, b} *)
  Alcotest.(check (list int))
    "r3's causal-past vector" [ 1; 1; 0 ]
    (V.to_list (Write_vectors.of_read wv ~proc:2 ~slot:0))

let test_write_vectors_precedence () =
  let h, wa, wc, wb, wd, _, _ = h1 () in
  let wv = Write_vectors.compute h in
  let d (w : Operation.write) = w.Operation.wdot in
  check_bool "a ↦co d" true (Write_vectors.write_precedes wv (d wa) (d wd));
  check_bool "c ∥ b" true (Write_vectors.write_concurrent wv (d wc) (d wb));
  check_bool "a ↦co r3" true
    (Write_vectors.write_precedes_read wv (d wa) ~proc:2 ~slot:0);
  check_bool "c not ↦co r3" false
    (Write_vectors.write_precedes_read wv (d wc) ~proc:2 ~slot:0)

let test_write_vectors_not_found () =
  let h, _, _, _, _, _, _ = h1 () in
  let wv = Write_vectors.compute h in
  check_bool "missing write raises" true
    (try
       ignore (Write_vectors.of_write wv (Dot.make ~replica:0 ~seq:9));
       false
     with Not_found -> true)

(* random histories: the O(ops·n) vectors must agree with the O(ops²)
   closure everywhere. Histories are generated by simulating a
   sequentially consistent shared memory (reads return the globally
   last write), which always yields a valid causal history. *)
let random_history rand_int n_procs n_vars steps =
  let locals = Array.init n_procs (fun proc -> Local_history.create ~proc ()) in
  let last_write = Array.make n_vars None in
  for _ = 1 to steps do
    let proc = rand_int n_procs in
    let var = rand_int n_vars in
    if rand_int 2 = 0 then begin
      let value = rand_int 100 in
      let w = Local_history.add_write locals.(proc) ~var ~value in
      last_write.(var) <- Some w
    end
    else
      match last_write.(var) with
      | None ->
          ignore
            (Local_history.add_read locals.(proc) ~var ~value:Operation.Bot
               ~read_from:None)
      | Some (w : Operation.write) ->
          ignore
            (Local_history.add_read locals.(proc) ~var
               ~value:(Operation.Val w.wvalue)
               ~read_from:(Some w.wdot))
  done;
  History.of_locals (Array.to_list locals)

let prop_write_vectors_agree_with_closure =
  qcheck_case ~count:50 "fast vectors = dense closure on random histories"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Dsm_sim.Rng.create seed in
      let rand_int n = Dsm_sim.Rng.int rng n in
      let h = random_history rand_int 3 3 30 in
      let co = Causal_order.compute h in
      let wv = Write_vectors.compute h in
      List.for_all
        (fun (w : Operation.write) ->
          V.equal
            (Causal_order.true_write_co co w)
            (Write_vectors.of_write wv w.wdot))
        (History.writes h))

let prop_random_sc_history_is_causal =
  qcheck_case ~count:50 "sequentially consistent histories are causal"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Dsm_sim.Rng.create seed in
      let rand_int n = Dsm_sim.Rng.int rng n in
      let h = random_history rand_int 3 3 30 in
      Legality.is_causally_consistent (Causal_order.compute h))


(* cross-module consistency: the causality graph's edge set equals the
   covering relation of the writes' ground-truth vectors as computed by
   the independent Clock_order machinery *)
let prop_graph_equals_vector_covers =
  qcheck_case ~count:30 "causality graph = clock-order covers"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Dsm_sim.Rng.create seed in
      let rand_int n = Dsm_sim.Rng.int rng n in
      let h = random_history rand_int 3 3 20 in
      let co = Causal_order.compute h in
      let wv = Write_vectors.compute h in
      let graph = Causality_graph.compute co in
      let vec_of (w : Operation.write) = Write_vectors.of_write wv w.wdot in
      let writes = History.writes h in
      (* distinct writes always have distinct vectors (the issuer
         component differs), so covers over vectors maps 1:1 to dots *)
      let vecs = List.map vec_of writes in
      let covers = Dsm_vclock.Clock_order.covers vecs in
      let edges = Causality_graph.edges graph in
      let dot_of_vec v =
        (List.find
           (fun (w : Operation.write) -> V.equal (vec_of w) v)
           writes)
          .wdot
      in
      let cover_pairs =
        List.map (fun (a, b) -> (dot_of_vec a, dot_of_vec b)) covers
        |> List.sort compare
      in
      List.sort compare edges = cover_pairs)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "memory"
    [
      ( "bitset",
        [
          Alcotest.test_case "basics" `Quick test_bitset_basics;
          Alcotest.test_case "bounds" `Quick test_bitset_bounds;
          Alcotest.test_case "set operations" `Quick test_bitset_set_ops;
          prop_bitset_roundtrip;
          prop_bitset_union_cardinal;
        ] );
      ( "operation",
        [
          Alcotest.test_case "paper notation pp" `Quick test_operation_pp;
          Alcotest.test_case "accessors" `Quick test_operation_accessors;
          Alcotest.test_case "local history sequencing" `Quick
            test_local_history_sequencing;
        ] );
      ( "history",
        [
          Alcotest.test_case "shape of H1" `Quick test_history_shape;
          Alcotest.test_case "H1 validates" `Quick test_history_validate_ok;
          Alcotest.test_case "bad process ids" `Quick
            test_history_rejects_bad_proc_ids;
          Alcotest.test_case "dangling read_from" `Quick
            test_history_validation_catches_dangling;
          Alcotest.test_case "wrong value" `Quick
            test_history_validation_catches_wrong_value;
          Alcotest.test_case "wrong variable" `Quick
            test_history_validation_catches_wrong_variable;
          Alcotest.test_case "bot with value" `Quick
            test_history_validation_catches_bot_with_value;
        ] );
      ( "causal_order",
        [
          Alcotest.test_case "Example 1 relations" `Quick
            test_co_h1_relations;
          Alcotest.test_case "reads in the order" `Quick
            test_co_reads_in_order;
          Alcotest.test_case "causal past" `Quick test_co_causal_past;
          Alcotest.test_case "ground-truth Write_co" `Quick
            test_co_true_write_co_vectors;
          Alcotest.test_case "related pairs" `Quick test_co_related_pairs;
          Alcotest.test_case "rejects invalid history" `Quick
            test_co_rejects_invalid_history;
        ] );
      ( "legality",
        [
          Alcotest.test_case "H1 consistent" `Quick
            test_legality_h1_consistent;
          Alcotest.test_case "stale read detected" `Quick
            test_legality_detects_stale_read;
          Alcotest.test_case "⊥ after write detected" `Quick
            test_legality_detects_bot_after_write;
          Alcotest.test_case "own overwrite stale" `Quick
            test_legality_own_overwrite;
          Alcotest.test_case "concurrent writes read in both orders"
            `Quick test_legality_concurrent_reads_diverge;
        ] );
      ( "causality_graph",
        [
          Alcotest.test_case "Figure 7" `Quick test_graph_h1;
          Alcotest.test_case "topological order" `Quick
            test_graph_topological;
          Alcotest.test_case "graphviz output" `Quick test_graph_graphviz;
          Alcotest.test_case "chain" `Quick test_graph_chain;
          Alcotest.test_case "antichain" `Quick test_graph_antichain;
        ] );
      ( "enabling",
        [
          Alcotest.test_case "Table 1 sets" `Quick test_enabling_table1;
          Alcotest.test_case "ANBKH superset (Table 2)" `Quick
            test_enabling_anbkh_superset;
          Alcotest.test_case "event enumeration" `Quick
            test_enabling_event_count;
        ] );
      ( "write_vectors",
        [
          Alcotest.test_case "matches closure on H1" `Quick
            test_write_vectors_match_closure_on_h1;
          Alcotest.test_case "read past vector" `Quick
            test_write_vectors_read_past;
          Alcotest.test_case "precedence queries" `Quick
            test_write_vectors_precedence;
          Alcotest.test_case "not found" `Quick test_write_vectors_not_found;
          prop_write_vectors_agree_with_closure;
          prop_random_sc_history_is_causal;
          prop_graph_equals_vector_covers;
        ] );
    ]
