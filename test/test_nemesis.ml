(* Nemesis: link-level fault primitives, verdict classification, the
   scenario corpus, swarm acceptance, shrinking and replayable JSON.

   The link-primitive tests drive Network directly (one-wayness, flap
   phase as a pure function of the clock, inflation of already-sampled
   delays, per-cause-label message conservation); the rest exercise the
   campaign driver end to end, including the canary self-test: a swarm
   that cannot catch the deliberately buggy protocol tests nothing. *)

module Engine = Dsm_sim.Engine
module Rng = Dsm_sim.Rng
module Network = Dsm_sim.Network
module Latency = Dsm_sim.Latency
module Sim_time = Dsm_sim.Sim_time
module Checker = Dsm_runtime.Checker
module CC = Dsm_runtime.Churn_campaign
module Nemesis = Dsm_runtime.Nemesis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let verdict : Nemesis.verdict Alcotest.testable =
  Alcotest.testable Nemesis.pp_verdict ( = )

let make_net ?faults ?(latency = Latency.Constant 1.) ?(seed = 1) n =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let net =
    Network.create ~engine ~rng ~n
      ~latency:(fun ~src:_ ~dst:_ -> latency)
      ?faults ()
  in
  (engine, net)

(* ------------------------------------------------------------------ *)
(* asymmetric cuts                                                     *)
(* ------------------------------------------------------------------ *)

let test_oneway_is_one_way () =
  let engine, net = make_net 2 in
  let got = Array.make 2 0 in
  for p = 0 to 1 do
    Network.set_handler net p (fun ~src:_ ~at:_ () -> got.(p) <- got.(p) + 1)
  done;
  Network.cut_oneway net ~src:0 ~dst:1;
  check_bool "0->1 cut" true (Network.is_cut_oneway net ~src:0 ~dst:1);
  check_bool "1->0 open" false (Network.is_cut_oneway net ~src:1 ~dst:0);
  Network.send net ~src:0 ~dst:1 ();
  Network.send net ~src:1 ~dst:0 ();
  ignore (Engine.run engine);
  check_int "cut direction lost" 0 got.(1);
  check_int "reverse direction delivered" 1 got.(0);
  check_int "counted under its own cause" 1
    (Network.messages_oneway_dropped net);
  check_int "not a symmetric-partition drop" 0
    (Network.messages_partition_dropped net);
  Network.heal_oneway net ~src:0 ~dst:1;
  Network.send net ~src:0 ~dst:1 ();
  ignore (Engine.run engine);
  check_int "healed direction delivers" 1 got.(1)

let test_heal_all_clears_oneway () =
  let _engine, net = make_net 3 in
  Network.cut_oneway net ~src:0 ~dst:1;
  Network.cut_oneway net ~src:2 ~dst:0;
  Network.heal_all net;
  check_bool "0->1 healed" false (Network.is_cut_oneway net ~src:0 ~dst:1);
  check_bool "2->0 healed" false (Network.is_cut_oneway net ~src:2 ~dst:0)

(* ------------------------------------------------------------------ *)
(* flapping                                                            *)
(* ------------------------------------------------------------------ *)

(* cut-first square wave: with period 10 armed at t=0, the link is cut
   on [0,10), healed on [10,20), cut on [20,30)... and permanently
   healed once the clock reaches [until_]. *)
let test_flap_phase_is_clock_function () =
  let engine, net = make_net 2 in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src:_ ~at:_ k -> got := k :: !got);
  Network.flap net ~a:0 ~b:1 ~period:10. ~until_:100.;
  let probe t expect_cut =
    Engine.schedule_at engine (Sim_time.of_float t) (fun () ->
        check_bool
          (Printf.sprintf "flap state at %g" t)
          expect_cut
          (Network.is_flap_cut net ~src:0 ~dst:1);
        check_bool
          (Printf.sprintf "flap is symmetric at %g" t)
          expect_cut
          (Network.is_flap_cut net ~src:1 ~dst:0);
        Network.send net ~src:0 ~dst:1 t)
  in
  probe 5. true;
  probe 15. false;
  probe 25. true;
  probe 35. false;
  probe 45. true;
  probe 105. false (* past until_: permanently healed *);
  ignore (Engine.run engine);
  Alcotest.(check (list (float 0.)))
    "only healed-phase sends arrive" [ 15.; 35.; 105. ]
    (List.sort compare !got);
  check_int "cut-phase sends counted as flap drops" 3
    (Network.messages_flap_dropped net)

(* arming a flap on one pair draws no RNG and schedules no events, so
   traffic on other links is byte-identical with and without it *)
let test_flap_perturbs_nothing () =
  let deliveries ~with_flap =
    let engine, net =
      make_net ~latency:(Latency.Lognormal { mu = 1.0; sigma = 0.8 }) ~seed:7 3
    in
    let ats = ref [] in
    Network.set_handler net 2 (fun ~src:_ ~at () ->
        ats := Sim_time.to_float at :: !ats);
    if with_flap then Network.flap net ~a:0 ~b:1 ~period:3. ~until_:50.;
    for k = 0 to 19 do
      Engine.schedule_at engine
        (Sim_time.of_float (float_of_int k))
        (fun () -> Network.send net ~src:0 ~dst:2 ())
    done;
    ignore (Engine.run engine);
    List.rev !ats
  in
  Alcotest.(check (list (float 0.)))
    "unrelated channel unchanged"
    (deliveries ~with_flap:false)
    (deliveries ~with_flap:true)

(* ------------------------------------------------------------------ *)
(* delay inflation                                                     *)
(* ------------------------------------------------------------------ *)

let test_inflation_multiplies_sampled_delay () =
  let engine, net = make_net ~latency:(Latency.Constant 2.) 2 in
  let ats = ref [] in
  for p = 0 to 1 do
    Network.set_handler net p (fun ~src:_ ~at tag ->
        ats := (tag, Sim_time.to_float at) :: !ats)
  done;
  Network.inflate net ~src:0 ~dst:1 ~factor:5. ~until_:50.;
  Network.send net ~src:0 ~dst:1 "spiked";
  Network.send net ~src:1 ~dst:0 "reverse";
  Engine.schedule_at engine (Sim_time.of_float 60.) (fun () ->
      Network.send net ~src:0 ~dst:1 "expired");
  ignore (Engine.run engine);
  let at tag = List.assoc tag !ats in
  Alcotest.(check (float 1e-9)) "spiked: 2 * 5" 10. (at "spiked");
  Alcotest.(check (float 1e-9)) "reverse direction untouched" 2. (at "reverse");
  Alcotest.(check (float 1e-9)) "after until_: base delay" 62. (at "expired");
  check_int "exactly one send inflated" 1 (Network.messages_delay_inflated net);
  check_int "inflation loses nothing" 3 (Network.messages_delivered net)

(* ------------------------------------------------------------------ *)
(* message conservation per cause label (qcheck)                       *)
(* ------------------------------------------------------------------ *)

(* with every destination live and in the view, the only loss causes
   are send-time link state and the random drop fault — so every
   transmission (plus every duplicate) is accounted for by exactly one
   of: delivered, random drop, partition drop, one-way drop, flap
   drop. Nothing is left in flight after the engine drains. *)
let conservation_law =
  QCheck.Test.make ~count:100 ~name:"per-cause message conservation"
    QCheck.(
      quad (int_bound 9999) (int_range 1 60) (int_bound 30) (int_bound 30))
    (fun (seed, nmsg, droppct, duppct) ->
      let faults =
        {
          Network.drop = float_of_int droppct /. 100.;
          duplicate = float_of_int duppct /. 100.;
          corrupt = 0.;
        }
      in
      let engine, net = make_net ~faults ~seed 3 in
      for p = 0 to 2 do
        Network.set_handler net p (fun ~src:_ ~at:_ () -> ())
      done;
      if seed land 1 = 1 then Network.cut_oneway net ~src:0 ~dst:1;
      if seed mod 3 = 0 then Network.flap net ~a:1 ~b:2 ~period:3. ~until_:40.;
      if seed mod 5 = 0 then begin
        Engine.schedule_at engine (Sim_time.of_float 20.) (fun () ->
            Network.cut net ~a:0 ~b:2);
        Engine.schedule_at engine (Sim_time.of_float 35.) (fun () ->
            Network.heal net ~a:0 ~b:2)
      end;
      let pairs = Rng.create (seed + 1) in
      for k = 0 to nmsg - 1 do
        let src = Rng.int pairs 3 in
        let dst = (src + 1 + Rng.int pairs 2) mod 3 in
        Engine.schedule_at engine
          (Sim_time.of_float (float_of_int k))
          (fun () -> Network.send net ~src ~dst ())
      done;
      ignore (Engine.run engine);
      Network.messages_sent net = nmsg
      && Network.in_flight net = 0
      && Network.messages_sent net + Network.messages_duplicated net
         = Network.messages_delivered net
           + Network.messages_dropped net
           + Network.messages_partition_dropped net
           + Network.messages_oneway_dropped net
           + Network.messages_flap_dropped net)

(* ------------------------------------------------------------------ *)
(* verdicts and classification                                         *)
(* ------------------------------------------------------------------ *)

let test_verdict_names_round_trip () =
  let all =
    [
      Nemesis.Clean;
      Refuted_suspicion;
      Degraded_session;
      Unnecessary_delay;
      Ghost_leak;
      Session_anomaly;
      Diverged;
      Violation;
      Stuck;
    ]
  in
  List.iter
    (fun v ->
      Alcotest.(check (option verdict))
        (Nemesis.verdict_name v) (Some v)
        (Nemesis.verdict_of_name (Nemesis.verdict_name v)))
    all;
  Alcotest.(check (option verdict)) "unknown" None
    (Nemesis.verdict_of_name "no-such-verdict");
  check_bool "clean accepted" true (Nemesis.accepted Nemesis.Clean);
  check_bool "refuted accepted" true (Nemesis.accepted Nemesis.Refuted_suspicion);
  check_bool "degraded session accepted" true
    (Nemesis.accepted Nemesis.Degraded_session);
  check_bool "session anomaly not accepted" false
    (Nemesis.accepted Nemesis.Session_anomaly);
  check_bool "diverged not accepted" false (Nemesis.accepted Nemesis.Diverged)

(* derive classification units from two real outcomes: a clean baseline
   run (then functionally perturbed field by field) and the canary run
   (real checker violations) *)
let clean_outcome () =
  let sc = Option.get (Nemesis.find_scenario "clean-baseline") in
  match (Nemesis.run sc.sched_).outcome with
  | Some o -> o
  | None -> Alcotest.fail "baseline run stuck"

let test_classify_perturbations () =
  let o = clean_outcome () in
  let classify = Nemesis.classify ~optimal:true in
  Alcotest.check verdict "baseline is clean" Nemesis.Clean (classify o);
  Alcotest.check verdict "ghost dots" Nemesis.Ghost_leak
    (classify { o with CC.quarantine_leaks = 1 });
  Alcotest.check verdict "final-state disagreement" Nemesis.Diverged
    (classify { o with CC.live_equal = false });
  Alcotest.check verdict "lost write" Nemesis.Diverged
    (classify
       {
         o with
         CC.report =
           {
             o.report with
             Checker.lost = [ (0, Dsm_vclock.Dot.make ~replica:0 ~seq:1) ];
           };
       });
  let delayed =
    { o with CC.report = { o.report with Checker.unnecessary_delays = 1 } }
  in
  Alcotest.check verdict "Theorem-4 protocols must not over-delay"
    Nemesis.Unnecessary_delay (classify delayed);
  Alcotest.check verdict "non-optimal protocols may delay" Nemesis.Clean
    (Nemesis.classify ~optimal:false delayed);
  Alcotest.check verdict "refuted false positive is survivable"
    Nemesis.Refuted_suspicion
    (classify { o with CC.false_suspicions = 1 });
  Alcotest.check verdict "precedence: ghosts beat divergence"
    Nemesis.Ghost_leak
    (classify { o with CC.quarantine_leaks = 1; live_equal = false })

let test_classify_unrefuted_false_suspicion () =
  let o = clean_outcome () in
  let ejected p =
    {
      CC.speer = p;
      sobserver = 0;
      sphi = 9.;
      sat = 50.;
      strue = false;
      slatency = None;
      srefuted_at = None;
    }
  in
  (* a live slot falsely suspected, never refuted, missing at the end,
     and not scheduled to be gone: a permanent wrongful ejection *)
  Alcotest.check verdict "wrongful permanent ejection" Nemesis.Diverged
    (Nemesis.classify ~optimal:true
       {
         o with
         CC.suspicions = [ ejected 1 ];
         active_at_end = List.filter (fun p -> p <> 1) o.CC.active_at_end;
       });
  (* the same suspicion is benign while the slot is active at the end
     (a scripted recover re-admitted it without touching srefuted_at) *)
  Alcotest.check verdict "re-admitted by script" Nemesis.Clean
    (Nemesis.classify ~optimal:true { o with CC.suspicions = [ ejected 1 ] })

(* session-tier verdicts, derived from a real session-armed outcome so
   the report is structurally honest — only the judged field is bent *)
let test_classify_session_outcomes () =
  let module ST = Dsm_runtime.Session_tier in
  let sc = Option.get (Nemesis.find_scenario "session-kill-home") in
  let o =
    match (Nemesis.run sc.sched_).outcome with
    | Some o -> o
    | None -> Alcotest.fail "session-kill-home stuck"
  in
  let sr =
    match o.CC.sessions with
    | Some sr -> sr
    | None -> Alcotest.fail "session-armed run produced no session report"
  in
  let classify = Nemesis.classify ~optimal:true in
  check_bool "base run is accepted" true (Nemesis.accepted (classify o));
  Alcotest.check verdict "duplicate applied write is a session anomaly"
    Nemesis.Session_anomaly
    (classify { o with CC.sessions = Some { sr with ST.duplicate_writes = 1 } });
  Alcotest.check verdict "precedence: session anomaly beats ghosts"
    Nemesis.Session_anomaly
    (classify
       {
         o with
         CC.quarantine_leaks = 1;
         sessions = Some { sr with ST.duplicate_writes = 1 };
       });
  Alcotest.check verdict "precedence: ghosts beat divergence with sessions armed"
    Nemesis.Ghost_leak
    (classify { o with CC.quarantine_leaks = 1; live_equal = false });
  let span =
    match sr.ST.spans with
    | s :: _ -> s
    | [] -> Alcotest.fail "session run recorded no spans"
  in
  Alcotest.check verdict "exhausted retries degrade, survivably"
    Nemesis.Degraded_session
    (classify
       {
         o with
         CC.false_suspicions = 0;
         sessions = Some { sr with ST.degraded = [ span ] };
       });
  Alcotest.check verdict "precedence: refuted suspicion beats degradation"
    Nemesis.Refuted_suspicion
    (classify
       {
         o with
         CC.false_suspicions = max 1 o.CC.false_suspicions;
         sessions = Some { sr with ST.degraded = [ span ] };
       })

let test_classify_real_violations () =
  let sc = Option.get (Nemesis.find_scenario "canary-reorder") in
  let r = Nemesis.run sc.sched_ in
  Alcotest.check verdict "canary violates" Nemesis.Violation r.verdict;
  match r.outcome with
  | None -> Alcotest.fail "canary run stuck"
  | Some o ->
      Alcotest.check verdict "violations beat ghosts" Nemesis.Violation
        (Nemesis.classify ~optimal:true { o with CC.quarantine_leaks = 1 })

(* ------------------------------------------------------------------ *)
(* scenario corpus                                                     *)
(* ------------------------------------------------------------------ *)

let test_scenario_corpus () =
  check_bool "corpus is non-trivial" true (List.length Nemesis.scenarios >= 10);
  List.iter
    (fun (sc : Nemesis.scenario) ->
      let r = Nemesis.run sc.sched_ in
      if not (List.mem r.verdict sc.expected) then
        Alcotest.failf "%s: got %s, expected [%s]" sc.sched_.Nemesis.name
          (Nemesis.verdict_name r.verdict)
          (String.concat "; " (List.map Nemesis.verdict_name sc.expected)))
    Nemesis.scenarios

let test_validate_rejects_nonsense () =
  let sc = Option.get (Nemesis.find_scenario "clean-baseline") in
  let bad = { sc.sched_ with Nemesis.initial = 0 } in
  check_bool "initial=0 rejected" true
    (try
       Nemesis.validate_schedule bad;
       false
     with Invalid_argument _ -> true);
  check_bool "unknown protocol rejected" true
    (try
       Nemesis.validate_schedule { sc.sched_ with Nemesis.protocol = "tcp" };
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* swarm                                                               *)
(* ------------------------------------------------------------------ *)

let test_mini_swarm_accepted () =
  let rep = Nemesis.swarm ~seed:1 ~count:16 () in
  check_int "all schedules ran" 16 rep.total;
  check_int "all accepted" 16 rep.accepted_count;
  Alcotest.(check (list reject)) "no failures" [] rep.failures;
  check_int "tally sums to total" rep.total
    (List.fold_left (fun acc (_, k) -> acc + k) 0 rep.counts)

let test_swarm_is_deterministic () =
  let tally () =
    (Nemesis.swarm ~seed:11 ~count:6 ()).counts
    |> List.map (fun (v, k) -> (Nemesis.verdict_name v, k))
  in
  Alcotest.(check (list (pair string int))) "same seed, same tally" (tally ())
    (tally ())

(* ------------------------------------------------------------------ *)
(* canary + shrink + replayable JSON                                   *)
(* ------------------------------------------------------------------ *)

let test_canary_caught_and_shrunk () =
  let rep = Nemesis.swarm ~protocol:"canary" ~seed:42 ~count:1 () in
  check_int "swarm catches the canary" 0 rep.accepted_count;
  let failing =
    match rep.failures with
    | r :: _ -> r
    | [] -> Alcotest.fail "canary swarm produced no failure"
  in
  Alcotest.check verdict "as a safety violation" Nemesis.Violation
    failing.verdict;
  let sh = Nemesis.shrink failing.sched ~target:failing.verdict in
  check_bool "shrinker made progress" true (sh.events_after < sh.events_before);
  check_bool "minimal reproducer is small" true (sh.events_after <= 10);
  let replayed = Nemesis.run sh.minimal in
  Alcotest.check verdict "minimal schedule still violates" Nemesis.Violation
    replayed.verdict;
  (* byte round-trip through the JSON reproducer, then replay again:
     same verdict, same evidence line *)
  let json = Nemesis.to_json_string sh.minimal in
  match Nemesis.of_json_string json with
  | Error msg -> Alcotest.failf "reproducer does not parse: %s" msg
  | Ok decoded ->
      Alcotest.(check string)
        "re-serialization is byte-identical" json
        (Nemesis.to_json_string decoded);
      let r2 = Nemesis.run decoded in
      Alcotest.check verdict "replay verdict" replayed.verdict r2.verdict;
      Alcotest.(check string) "replay evidence" replayed.detail r2.detail

let test_json_round_trips_whole_corpus () =
  List.iter
    (fun (sc : Nemesis.scenario) ->
      let json = Nemesis.to_json_string sc.sched_ in
      match Nemesis.of_json_string json with
      | Error msg -> Alcotest.failf "%s: %s" sc.sched_.Nemesis.name msg
      | Ok decoded ->
          Alcotest.(check string) sc.sched_.Nemesis.name json
            (Nemesis.to_json_string decoded))
    Nemesis.scenarios

let test_json_rejects_garbage () =
  let is_err = function Error _ -> true | Ok _ -> false in
  check_bool "empty object" true (is_err (Nemesis.of_json_string "{}"));
  check_bool "not JSON" true (is_err (Nemesis.of_json_string "nemesis"));
  check_bool "wrong schema" true
    (is_err (Nemesis.of_json_string {|{"schema":"causal-dsm-trace/v1"}|}));
  let sc = Option.get (Nemesis.find_scenario "partition-heal") in
  let json = Nemesis.to_json_string sc.sched_ in
  check_bool "trailing garbage" true
    (is_err (Nemesis.of_json_string (json ^ " []")))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "nemesis"
    [
      ( "link primitives",
        [
          Alcotest.test_case "one-way cut is one-way" `Quick
            test_oneway_is_one_way;
          Alcotest.test_case "heal_all clears one-way cuts" `Quick
            test_heal_all_clears_oneway;
          Alcotest.test_case "flap phase is a clock function" `Quick
            test_flap_phase_is_clock_function;
          Alcotest.test_case "flap perturbs no other channel" `Quick
            test_flap_perturbs_nothing;
          Alcotest.test_case "inflation multiplies sampled delay" `Quick
            test_inflation_multiplies_sampled_delay;
          QCheck_alcotest.to_alcotest conservation_law;
        ] );
      ( "classification",
        [
          Alcotest.test_case "verdict names round-trip" `Quick
            test_verdict_names_round_trip;
          Alcotest.test_case "perturbed outcomes" `Quick
            test_classify_perturbations;
          Alcotest.test_case "unrefuted false suspicion" `Quick
            test_classify_unrefuted_false_suspicion;
          Alcotest.test_case "session-tier verdicts" `Slow
            test_classify_session_outcomes;
          Alcotest.test_case "real violations win precedence" `Quick
            test_classify_real_violations;
        ] );
      ( "campaigns",
        [
          Alcotest.test_case "scenario corpus verdicts" `Slow
            test_scenario_corpus;
          Alcotest.test_case "schedule validation" `Quick
            test_validate_rejects_nonsense;
          Alcotest.test_case "mini swarm all accepted" `Slow
            test_mini_swarm_accepted;
          Alcotest.test_case "swarm determinism" `Quick
            test_swarm_is_deterministic;
        ] );
      ( "shrink + replay",
        [
          Alcotest.test_case "canary caught, shrunk, replayed" `Slow
            test_canary_caught_and_shrunk;
          Alcotest.test_case "JSON round-trips the corpus" `Quick
            test_json_round_trips_whole_corpus;
          Alcotest.test_case "JSON rejects garbage" `Quick
            test_json_rejects_garbage;
        ] );
    ]
