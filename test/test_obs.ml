(* Tests for the observability layer: metrics registry semantics
   (find-or-create merging, kind clashes, the inert null registry),
   span lifecycle assembly (including destinations that crash with the
   write still buffered), the execution trace ring buffer, and the
   end-to-end property tying it together: the blocked records a run
   emits coincide with the checker's delay list, and the provenance
   explanation witnesses every OptP delay. *)

module Metrics = Dsm_obs.Metrics
module Span = Dsm_obs.Span
module Export = Dsm_obs.Export
module Execution = Dsm_runtime.Execution
module Sim_run = Dsm_runtime.Sim_run
module Checker = Dsm_runtime.Checker
module Provenance = Dsm_runtime.Provenance
module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Sim_time = Dsm_sim.Sim_time
module Dot = Dsm_vclock.Dot

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let dot r s = Dot.make ~replica:r ~seq:s
let t f = Sim_time.of_float f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counter_merge () =
  let reg = Metrics.create () in
  let a = Metrics.counter reg "sends" in
  let b = Metrics.counter reg "sends" in
  Metrics.incr a;
  Metrics.add b 2;
  check_int "merged count via a" 3 (Metrics.counter_value a);
  check_int "merged count via b" 3 (Metrics.counter_value b);
  check_int "one row" 1 (List.length (Metrics.rows reg))

let test_labels_identity () =
  let reg = Metrics.create () in
  (* same name, same labels in a different order: one instrument *)
  let a =
    Metrics.counter reg "dropped"
      ~labels:[ ("cause", "random"); ("dir", "out") ]
  in
  let b =
    Metrics.counter reg "dropped"
      ~labels:[ ("dir", "out"); ("cause", "random") ]
  in
  (* same name, different labels: distinct instruments *)
  let c = Metrics.counter reg "dropped" ~labels:[ ("cause", "crash") ] in
  Metrics.incr a;
  Metrics.incr b;
  Metrics.incr c;
  check_int "label-equal merged" 2 (Metrics.counter_value a);
  check_int "label-distinct separate" 1 (Metrics.counter_value c);
  check_int "two rows" 2 (List.length (Metrics.rows reg))

let test_kind_clash () =
  let reg = Metrics.create () in
  let (_ : Metrics.counter) = Metrics.counter reg "net_sends" in
  check_bool "gauge under a counter name raises" true
    (try
       let (_ : Metrics.gauge) = Metrics.gauge reg "net_sends" in
       false
     with Invalid_argument _ -> true);
  check_bool "histogram under a counter name raises" true
    (try
       let (_ : Metrics.histogram) =
         Metrics.histogram reg "net_sends" ~lo:0. ~hi:1. ~bins:2
       in
       false
     with Invalid_argument _ -> true)

let test_null_registry_inert () =
  let reg = Metrics.null () in
  check_bool "disabled" false (Metrics.enabled reg);
  let c = Metrics.counter reg "x" in
  let g = Metrics.gauge reg "y" in
  let h = Metrics.histogram reg "z" ~lo:0. ~hi:10. ~bins:4 in
  Metrics.incr c;
  Metrics.add c 41;
  Metrics.set g 7;
  Metrics.observe h 3.5;
  check_int "counter never records" 0 (Metrics.counter_value c);
  check_int "gauge never records" 0 (Metrics.gauge_max g);
  check_int "histogram never records" 0 (Metrics.histogram_count h);
  check_int "no rows" 0 (List.length (Metrics.rows reg))

let test_gauge_watermark () =
  let reg = Metrics.create () in
  let g = Metrics.gauge reg "buffer_len" in
  Metrics.set g 3;
  Metrics.set g 9;
  Metrics.set g 2;
  check_int "current" 2 (Metrics.gauge_value g);
  check_int "high watermark" 9 (Metrics.gauge_max g)

let test_histogram_merge_and_stats () =
  let reg = Metrics.create () in
  let a =
    Metrics.histogram reg "wait" ~labels:[ ("proto", "OptP") ] ~lo:0.
      ~hi:100. ~bins:10
  in
  (* re-registration with different binning: first registration wins,
     observations land in the same instrument *)
  let b =
    Metrics.histogram reg "wait" ~labels:[ ("proto", "OptP") ] ~lo:0.
      ~hi:5. ~bins:2
  in
  check_float "empty mean is 0" 0. (Metrics.histogram_mean a);
  Metrics.observe a 10.;
  Metrics.observe b 30.;
  check_int "merged count" 2 (Metrics.histogram_count a);
  check_float "sum" 40. (Metrics.histogram_sum b);
  check_float "max" 30. (Metrics.histogram_max a);
  check_float "mean" 20. (Metrics.histogram_mean b);
  check_int "one row" 1 (List.length (Metrics.rows reg))

let test_rows_and_json () =
  let reg = Metrics.create () in
  Metrics.incr (Metrics.counter reg "first");
  Metrics.set (Metrics.gauge reg "second") 4;
  Metrics.observe (Metrics.histogram reg "third" ~lo:0. ~hi:1. ~bins:2) 0.5;
  (match Metrics.rows reg with
  | [ (n1, [], Metrics.Counter_v 1);
      (n2, [], Metrics.Gauge_v { current = 4; max = 4 });
      (n3, [], Metrics.Histogram_v { count = 1; _ }) ] ->
      Alcotest.(check (list string))
        "registration order" [ "first"; "second"; "third" ] [ n1; n2; n3 ]
  | _ -> Alcotest.fail "unexpected rows shape");
  let json = Metrics.to_json reg in
  check_bool "json mentions every instrument" true
    (List.for_all
       (fun name -> contains ~sub:("\"" ^ name ^ "\"") json)
       [ "first"; "second"; "third" ])

(* ------------------------------------------------------------------ *)
(* Span lifecycle                                                      *)
(* ------------------------------------------------------------------ *)

(* one write w1#1 by p0: applied immediately at p1, buffered then
   applied at p2, and still sitting in p3's buffer (p3 crashed) *)
let crashed_dest_collector () =
  let c = Span.collector () in
  let sink = Span.sink c in
  sink (Span.Issue { dot = dot 0 1; proc = 0; var = 0; value = 7; at = 0. });
  sink (Span.Receipt { dot = dot 0 1; dst = 1; at = 5. });
  sink (Span.Apply { dot = dot 0 1; dst = 1; at = 5.; delayed = false });
  sink (Span.Receipt { dot = dot 0 1; dst = 2; at = 6. });
  sink
    (Span.Blocked { dot = dot 0 1; dst = 2; waiting_for = dot 1 9; at = 6. });
  sink (Span.Apply { dot = dot 0 1; dst = 2; at = 11.; delayed = true });
  sink (Span.Receipt { dot = dot 0 1; dst = 3; at = 7. });
  sink
    (Span.Blocked { dot = dot 0 1; dst = 3; waiting_for = dot 1 9; at = 7. });
  c

let test_span_lifecycle () =
  let c = crashed_dest_collector () in
  check_int "one span" 1 (Span.span_count c);
  check_int "two blocked records" 2 (Span.blocked_count c);
  match Span.find c (dot 0 1) with
  | None -> Alcotest.fail "span not found by dot"
  | Some s ->
      check_int "issuer" 0 (Span.issuer s);
      check_int "var" 0 (Span.var s);
      check_int "value" 7 (Span.value s);
      check_float "issued_at" 0. (Span.issued_at s);
      check_bool "issue seen" true (Span.issue_seen s);
      check_int "three destinations" 3 (List.length (Span.dests s));
      (match Span.dests s with
      | [ d1; d2; d3 ] ->
          check_int "dest order" 1 d1.Span.dst;
          check_bool "p1 immediate" true
            (d1.Span.applied_at = Some 5. && not d1.Span.delayed);
          check_bool "p2 blocked then applied" true
            (d2.Span.blocked_on = Some (dot 1 9, 6.)
            && d2.Span.applied_at = Some 11.
            && d2.Span.delayed);
          check_bool "p3 never closes" true
            (d3.Span.applied_at = None && d3.Span.skipped_at = None)
      | _ -> Alcotest.fail "expected exactly three dests");
      check_bool "span is open" true (Span.is_open s);
      (match Span.open_dests s with
      | [ d ] -> check_int "the crashed destination" 3 d.Span.dst
      | _ -> Alcotest.fail "expected exactly one open dest")

let test_span_truncated_issue () =
  (* ring-buffer traces can evict the issue event; the collector
     reconstructs the span from the first receipt *)
  let c = Span.collector () in
  let sink = Span.sink c in
  sink (Span.Receipt { dot = dot 2 4; dst = 0; at = 40. });
  sink (Span.Apply { dot = dot 2 4; dst = 0; at = 40.; delayed = false });
  match Span.find c (dot 2 4) with
  | None -> Alcotest.fail "span not reconstructed"
  | Some s ->
      check_bool "issue not seen" false (Span.issue_seen s);
      check_int "issuer from dot" 2 (Span.issuer s);
      check_int "unknown var" (-1) (Span.var s);
      check_bool "closed" false (Span.is_open s)

let test_exporters_smoke () =
  let c = crashed_dest_collector () in
  let b = Buffer.create 256 in
  Export.jsonl b (Span.spans c);
  let jsonl = Buffer.contents b in
  check_int "one jsonl line" 1
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)));
  Buffer.clear b;
  Export.chrome b ~n:4 ~end_time:20. (Span.spans c);
  let chrome = Buffer.contents b in
  check_bool "chrome doc is a trace-event array" true
    (String.length chrome > 2 && chrome.[0] = '[');
  check_bool "blocked slice names the missing dot" true
    (contains ~sub:"w2#9" chrome)

(* ------------------------------------------------------------------ *)
(* Execution trace ring buffer                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_buffer_eviction () =
  let e = Execution.create ~capacity_limit:8 ~n:1 ~m:1 () in
  for s = 1 to 20 do
    Execution.record e ~proc:0 ~time:(t (float_of_int s))
      (Execution.Apply { dot = dot 0 s; var = 0; value = s; delayed = false })
  done;
  check_int "ring keeps the cap" 8 (List.length (Execution.events e));
  check_int "dropped the rest" 12 (Execution.dropped_events e);
  (* survivors are the most recent events, still in order *)
  match Execution.events e with
  | { Execution.kind = Execution.Apply { dot = d; _ }; _ } :: _ ->
      check_bool "oldest survivor is w1#13" true (Dot.equal d (dot 0 13))
  | _ -> Alcotest.fail "expected apply events"

let test_unbounded_trace_drops_nothing () =
  let e = Execution.create ~n:1 ~m:1 () in
  for s = 1 to 20 do
    Execution.record e ~proc:0 ~time:(t (float_of_int s))
      (Execution.Apply { dot = dot 0 s; var = 0; value = s; delayed = false })
  done;
  check_int "all kept" 20 (Execution.event_count e);
  check_int "none dropped" 0 (Execution.dropped_events e)

(* ------------------------------------------------------------------ *)
(* End to end: blocked records vs checker delays, and explain          *)
(* ------------------------------------------------------------------ *)

let delayed_spec = Spec.make ~n:4 ~m:3 ~ops_per_process:40 ~seed:3 ()
let spread = Latency.Uniform { lo = 1.; hi = 80. }

let test_blocked_records_match_checker_delays () =
  let o =
    Sim_run.run (module Dsm_core.Opt_p) ~spec:delayed_spec ~latency:spread
      ~seed:2 ()
  in
  let report = Checker.check o.Sim_run.execution in
  check_bool "clean" true (Checker.is_clean report);
  check_bool "the run actually delays something" true
    (report.Checker.total_delays > 0);
  let sort = List.sort_uniq compare in
  let blocked =
    sort
      (List.map
         (fun (proc, d, _, _) -> (proc, Dot.to_string d))
         (Execution.blocked_events o.Sim_run.execution))
  in
  let delays =
    sort
      (List.map
         (fun (d : Checker.delay) -> (d.Checker.dproc, Dot.to_string d.Checker.ddot))
         report.Checker.delays)
  in
  check_bool "blocked set = checker delay set" true (blocked = delays)

let test_explain_witnesses_every_optp_delay () =
  let o =
    Sim_run.run (module Dsm_core.Opt_p) ~spec:delayed_spec ~latency:spread
      ~seed:2 ()
  in
  let report = Checker.check o.Sim_run.execution in
  let ex = Provenance.explain o.Sim_run.execution report in
  check_int "row per delay" report.Checker.total_delays ex.Provenance.total;
  check_int "all necessary (Theorem 4)" 0 ex.Provenance.unnecessary;
  check_int "all attributed" ex.Provenance.total ex.Provenance.attributed;
  check_int "all witnessed" ex.Provenance.total ex.Provenance.witnessed;
  List.iter
    (fun (r : Provenance.delay_explanation) ->
      check_bool "claim inside ground-truth blockers" true
        r.Provenance.eagrees;
      check_bool "wait is non-negative" true
        (match r.Provenance.ewait with Some w -> w >= 0. | None -> false))
    ex.Provenance.rows

let test_provenance_spans_cover_the_run () =
  let o =
    Sim_run.run (module Dsm_core.Opt_p) ~spec:delayed_spec ~latency:spread
      ~seed:2 ()
  in
  let c = Provenance.spans o.Sim_run.execution in
  check_int "one span per write"
    (List.length (Execution.writes o.Sim_run.execution))
    (Span.span_count c);
  check_int "blocked records carried over"
    (Execution.blocked_count o.Sim_run.execution)
    (Span.blocked_count c);
  check_bool "reliable delivery closes every span" true
    (List.for_all (fun s -> not (Span.is_open s)) (Span.spans c))

let test_run_identical_with_live_registry () =
  (* the acceptance property behind the null registry: observation
     must not move the simulation *)
  let run metrics =
    Sim_run.run (module Dsm_core.Opt_p) ~spec:delayed_spec ~latency:spread
      ~seed:2 ~metrics ()
  in
  let o0 = run (Metrics.null ()) in
  let live = Metrics.create () in
  let o1 = run live in
  check_float "same end time" o0.Sim_run.end_time o1.Sim_run.end_time;
  check_int "same messages" o0.Sim_run.messages_sent o1.Sim_run.messages_sent;
  check_int "same events"
    (Execution.event_count o0.Sim_run.execution)
    (Execution.event_count o1.Sim_run.execution);
  check_bool "live registry saw traffic" true
    (List.exists
       (fun (name, _, v) ->
         name = "net_sends"
         && match v with
            | Metrics.Counter_v c -> c = o1.Sim_run.messages_sent
            | _ -> false)
       (Metrics.rows live))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter merge" `Quick test_counter_merge;
          Alcotest.test_case "label identity" `Quick test_labels_identity;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "null registry inert" `Quick
            test_null_registry_inert;
          Alcotest.test_case "gauge watermark" `Quick test_gauge_watermark;
          Alcotest.test_case "histogram merge and stats" `Quick
            test_histogram_merge_and_stats;
          Alcotest.test_case "rows and json" `Quick test_rows_and_json;
        ] );
      ( "spans",
        [
          Alcotest.test_case "lifecycle with crashed destination" `Quick
            test_span_lifecycle;
          Alcotest.test_case "truncated issue" `Quick
            test_span_truncated_issue;
          Alcotest.test_case "exporters smoke" `Quick test_exporters_smoke;
        ] );
      ( "trace-ring",
        [
          Alcotest.test_case "eviction" `Quick test_ring_buffer_eviction;
          Alcotest.test_case "unbounded keeps all" `Quick
            test_unbounded_trace_drops_nothing;
        ] );
      ( "provenance",
        [
          Alcotest.test_case "blocked records = checker delays" `Quick
            test_blocked_records_match_checker_delays;
          Alcotest.test_case "explain witnesses OptP delays" `Quick
            test_explain_witnesses_every_optp_delay;
          Alcotest.test_case "spans cover the run" `Quick
            test_provenance_spans_cover_the_run;
          Alcotest.test_case "observation does not move the run" `Quick
            test_run_identical_with_live_registry;
        ] );
    ]
