(* Protocol-level property tests: the paper's theorems, exercised as
   executable properties over randomized workloads and networks.

   Every property runs a full simulation, reconstructs the history, and
   audits it with the protocol-independent checker:

   - Theorem 3 (safety) and Definitions 1-2 (causal consistency) must
     hold for every protocol on every run;
   - Theorem 4 (write-delay optimality): OptP's unnecessary-delay count
     is identically zero; and on the same workload/network seed its
     delayed-apply set is a subset of ANBKH's;
   - Theorems 1-2 ([Write_co] characterizes the causal order): the
     protocol's wire vectors must equal the ground-truth vectors
     recomputed from the history;
   - Theorem 5 (liveness): class-P protocols apply every write
     everywhere (completeness), and the writing-semantics variants lose
     nothing beyond their accounted skips. *)

module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Sim_run = Dsm_runtime.Sim_run
module Execution = Dsm_runtime.Execution
module Checker = Dsm_runtime.Checker
module Write_vectors = Dsm_memory.Write_vectors
module History = Dsm_memory.History
module Operation = Dsm_memory.Operation
module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock

let qcheck_case ?(count = 25) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* randomized run parameters: seed, process count, write ratio, latency
   variance — kept small enough that 25 cases stay fast *)
let params_gen =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 2 5 in
    let* ratio10 = int_range 1 9 in
    let* sigma10 = int_range 0 20 in
    return (seed, n, float_of_int ratio10 /. 10., float_of_int sigma10 /. 10.))

let run_of (seed, n, ratio, sigma) p =
  let spec =
    Spec.make ~n ~m:4 ~ops_per_process:60 ~write_ratio:ratio
      ~think:(Latency.Exponential { mean = 5. })
      ~seed ()
  in
  let latency =
    Latency.Lognormal { mu = log 10. -. (sigma *. sigma /. 2.); sigma }
  in
  Sim_run.run p ~spec ~latency ~seed:(seed + 1) ()

let all_protocols : (module Dsm_core.Protocol.S) list =
  [
    (module Dsm_core.Opt_p);
    (module Dsm_core.Anbkh);
    (module Dsm_core.Ws_receiver);
    (module Dsm_core.Opt_p_ws);
    (module Dsm_core.Ws_token);
  ]

(* -------------------------------------------------------------- *)
(* safety + causal consistency, for every protocol                 *)
(* -------------------------------------------------------------- *)

let prop_all_protocols_safe_and_legal =
  qcheck_case ~count:20 "every protocol: safe, legal, nothing lost"
    params_gen
    (fun params ->
      List.for_all
        (fun p ->
          let o = run_of params p in
          Checker.is_clean (Checker.check o.Sim_run.execution))
        all_protocols)

(* -------------------------------------------------------------- *)
(* Theorem 4: OptP optimality                                      *)
(* -------------------------------------------------------------- *)

let prop_optp_no_unnecessary_delays =
  qcheck_case ~count:30 "OptP: zero unnecessary delays (Theorem 4)"
    params_gen
    (fun params ->
      let o = run_of params (module Dsm_core.Opt_p) in
      (Checker.check o.Sim_run.execution).Checker.unnecessary_delays = 0)

let prop_optp_ws_no_unnecessary_delays =
  qcheck_case ~count:20 "OptP-WS inherits optimality" params_gen
    (fun params ->
      let o = run_of params (module Dsm_core.Opt_p_ws) in
      (Checker.check o.Sim_run.execution).Checker.unnecessary_delays = 0)

(* The paper's pointwise comparison X_OptP(e) = X_co-safe(e) ⊆
   X_ANBKH(e) holds per run. Across two separate runs the histories can
   diverge (reads return different writes, so ↦co itself differs) and
   OptP may pay a genuine delay for a dependency ANBKH's run never
   created. On a read-free workload, however, both protocols produce
   the same history (↦co = process order), the message pattern is
   identical, and the containment is exact: every write OptP delays,
   ANBKH delays too. *)
let prop_optp_delays_subset_of_anbkh_write_only =
  qcheck_case ~count:20
    "write-only workloads: OptP delayed set ⊆ ANBKH delayed set"
    params_gen
    (fun (seed, n, _ratio, sigma) ->
      let params = (seed, n, 1.0, sigma) in
      let o1 = run_of params (module Dsm_core.Opt_p) in
      let o2 = run_of params (module Dsm_core.Anbkh) in
      let delayed o = Execution.delayed_applies o.Sim_run.execution in
      List.for_all
        (fun (proc, d) ->
          List.exists
            (fun (p2, d2) -> p2 = proc && Dot.equal d d2)
            (delayed o2))
        (delayed o1))

(* and with reads, what survives across runs is optimality itself:
   every OptP delay is necessary for OptP's own history, so OptP's
   delay count equals the minimum any safe protocol could achieve on
   that history under that arrival pattern *)
let prop_optp_delays_all_necessary_cross =
  qcheck_case ~count:20 "OptP delay count = necessary count" params_gen
    (fun params ->
      let o = run_of params (module Dsm_core.Opt_p) in
      let r = Checker.check o.Sim_run.execution in
      r.Checker.total_delays = r.Checker.necessary_delays)

(* -------------------------------------------------------------- *)
(* Theorems 1-2: protocol vectors = ground truth                    *)
(* -------------------------------------------------------------- *)

(* We recover each write's protocol timestamp from the ground truth of
   the OptP run itself: by Theorem 1 the Write_co the protocol stamped
   equals the vector recomputed from the reconstructed history. The
   link is indirect but sharp: Sim_run reconstructs the history purely
   from apply/return events, so agreement means the wire vectors
   induced exactly the claimed causal order. *)
let prop_write_co_characterizes_co =
  qcheck_case ~count:20 "Write_co comparisons = causal order" params_gen
    (fun params ->
      let o = run_of params (module Dsm_core.Opt_p) in
      let wv = Write_vectors.compute o.Sim_run.history in
      let writes = History.writes o.Sim_run.history in
      (* vector comparison and ↦co agree on every pair *)
      List.for_all
        (fun (w1 : Operation.write) ->
          List.for_all
            (fun (w2 : Operation.write) ->
              Dot.equal w1.wdot w2.wdot
              || (let va = Write_vectors.of_write wv w1.wdot
                  and vb = Write_vectors.of_write wv w2.wdot in
                  let lt = V.lt va vb in
                  let co = Write_vectors.write_precedes wv w1.wdot w2.wdot in
                  lt = co))
            writes)
        writes)

(* Corollary 2: concurrency is mutual ignorance of latest writes *)
let prop_corollary2 =
  qcheck_case ~count:15 "Corollary 2 on every concurrent pair" params_gen
    (fun params ->
      let o = run_of params (module Dsm_core.Opt_p) in
      let wv = Write_vectors.compute o.Sim_run.history in
      let writes = History.writes o.Sim_run.history in
      List.for_all
        (fun (w1 : Operation.write) ->
          List.for_all
            (fun (w2 : Operation.write) ->
              Dot.equal w1.wdot w2.wdot
              || (not (Write_vectors.write_concurrent wv w1.wdot w2.wdot))
              ||
              let v1 = Write_vectors.of_write wv w1.wdot
              and v2 = Write_vectors.of_write wv w2.wdot in
              let i = Dot.replica w1.wdot and j = Dot.replica w2.wdot in
              V.get v2 i < V.get v1 i && V.get v1 j < V.get v2 j)
            writes)
        writes)

(* -------------------------------------------------------------- *)
(* Theorem 5: liveness / completeness                               *)
(* -------------------------------------------------------------- *)

let prop_class_p_complete =
  qcheck_case ~count:20 "OptP and ANBKH apply every write everywhere"
    params_gen
    (fun params ->
      List.for_all
        (fun p ->
          let o = run_of params p in
          (Checker.check o.Sim_run.execution).Checker.complete)
        [ (module Dsm_core.Opt_p : Dsm_core.Protocol.S);
          (module Dsm_core.Anbkh) ])

let prop_ws_missing_only_skips =
  qcheck_case ~count:15
    "writing semantics: every missing apply is an accounted skip"
    params_gen
    (fun params ->
      List.for_all
        (fun p ->
          let o = run_of params p in
          let r = Checker.check o.Sim_run.execution in
          r.Checker.lost = [])
        [ (module Dsm_core.Ws_receiver : Dsm_core.Protocol.S);
          (module Dsm_core.Opt_p_ws);
          (module Dsm_core.Ws_token) ])

(* -------------------------------------------------------------- *)
(* cross-protocol agreement on the final store                      *)
(* -------------------------------------------------------------- *)

(* With identical workloads, the set of writes is identical across
   protocols, so the same write bodies exist; completeness plus safety
   means class-P protocols converge: once quiesced, every replica holds
   a causally maximal write per variable. We check convergence within a
   protocol: all replicas end with a value produced by a write that no
   other applied write on that variable causally dominates. *)
let prop_final_values_causally_maximal =
  qcheck_case ~count:15 "final replica values are causally maximal"
    params_gen
    (fun params ->
      let o = run_of params (module Dsm_core.Opt_p) in
      let wv = Write_vectors.compute o.Sim_run.history in
      let writes = History.writes o.Sim_run.history in
      let n = Execution.n_processes o.Sim_run.execution in
      List.for_all
        (fun proc ->
          (* last applied write per var at proc *)
          let last = Hashtbl.create 8 in
          List.iter
            (fun (e : Execution.event) ->
              match e.kind with
              | Execution.Apply { dot; var; _ } -> Hashtbl.replace last var dot
              | _ -> ())
            (Execution.events_of o.Sim_run.execution proc);
          Hashtbl.fold
            (fun var dot acc ->
              acc
              && not
                   (List.exists
                      (fun (w : Operation.write) ->
                        w.wvar = var
                        && Write_vectors.write_precedes wv dot w.wdot)
                      writes))
            last true)
        (List.init n Fun.id))



(* -------------------------------------------------------------- *)
(* OptP-direct ≡ OptP                                               *)
(* -------------------------------------------------------------- *)

(* the direct-dependency encoding changes the wire format, not the
   semantics: on the same seed, history, delayed sets and apply orders
   must coincide exactly with OptP's *)
let prop_direct_equals_optp =
  qcheck_case ~count:20 "OptP-direct ≡ OptP run-for-run" params_gen
    (fun params ->
      let o1 = run_of params (module Dsm_core.Opt_p) in
      let o2 = run_of params (module Dsm_core.Opt_p_direct) in
      let same_history =
        History.ops o1.Sim_run.history = History.ops o2.Sim_run.history
      in
      let same_delays =
        Execution.delayed_applies o1.Sim_run.execution
        = Execution.delayed_applies o2.Sim_run.execution
      in
      let n = Execution.n_processes o1.Sim_run.execution in
      let same_apply_orders =
        List.for_all
          (fun p ->
            Execution.apply_order o1.Sim_run.execution p
            = Execution.apply_order o2.Sim_run.execution p)
          (List.init n Fun.id)
      in
      let clean =
        Checker.is_clean (Checker.check o2.Sim_run.execution)
      in
      same_history && same_delays && same_apply_orders && clean)

(* -------------------------------------------------------------- *)
(* failure injection                                                *)
(* -------------------------------------------------------------- *)

(* raw lossy links with no recovery: the checker must catch the
   resulting lost writes — silence would mean the auditor is blind *)
let prop_raw_losses_are_caught =
  qcheck_case ~count:10 "drops without recovery are detected as losses"
    params_gen
    (fun (seed, n, ratio, _sigma) ->
      let spec =
        Spec.make ~n:(max 3 n) ~m:4 ~ops_per_process:60
          ~write_ratio:(Float.max 0.4 ratio)
          ~think:(Latency.Exponential { mean = 5. })
          ~seed ()
      in
      let o =
        Sim_run.run
          (module Dsm_core.Opt_p)
          ~spec
          ~latency:(Latency.Exponential { mean = 10. })
          ~faults:{ Dsm_sim.Network.drop = 0.3; duplicate = 0.; corrupt = 0. }
          ~seed:(seed + 1) ()
      in
      let r = Checker.check o.Sim_run.execution in
      (* with hundreds of broadcasts at 30% loss, some write is lost
         with overwhelming probability — and must be reported *)
      r.Checker.lost <> [] && not (Checker.is_clean r))

(* the reliable-channel substrate heals the same faults: every
   protocol is clean and complete again *)
let prop_reliable_channels_heal_faults =
  qcheck_case ~count:8 "reliable channels restore exactly-once"
    params_gen
    (fun (seed, n, ratio, _sigma) ->
      let spec =
        Spec.make ~n:(max 3 n) ~m:4 ~ops_per_process:40 ~write_ratio:ratio
          ~think:(Latency.Exponential { mean = 5. })
          ~seed ()
      in
      List.for_all
        (fun p ->
          let o =
            Dsm_runtime.Reliable_run.run p ~spec
              ~latency:(Latency.Exponential { mean = 10. })
              ~faults:{ Dsm_sim.Network.drop = 0.25; duplicate = 0.15; corrupt = 0. }
              ~retransmit_after:60. ~seed:(seed + 1) ()
          in
          Checker.is_clean (Checker.check o.Dsm_runtime.Reliable_run.execution))
        [ (module Dsm_core.Opt_p : Dsm_core.Protocol.S);
          (module Dsm_core.Anbkh) ])


(* -------------------------------------------------------------- *)
(* adversarial delivery schedules                                   *)
(* -------------------------------------------------------------- *)

(* fully adversarial per-message delays through the scripted driver:
   whatever the delivery order, OptP stays clean, complete and free of
   unnecessary delays *)
let prop_optp_clean_under_adversarial_schedules =
  qcheck_case ~count:30 "OptP under arbitrary per-message delays"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Dsm_sim.Rng.create seed in
      let n = 3 in
      let m = 2 in
      (* a small random program per process: writes and reads at fixed
         issue times *)
      let ops =
        List.concat
          (List.init n (fun proc ->
               List.init 6 (fun k ->
                   let at = float_of_int ((k * 10) + proc + 1) in
                   if Dsm_sim.Rng.bool rng then
                     ( at,
                       Dsm_runtime.Scripted_run.Write
                         {
                           proc;
                           var = Dsm_sim.Rng.int rng m;
                           value = (proc * 1000) + k;
                         } )
                   else
                     ( at,
                       Dsm_runtime.Scripted_run.Read
                         { proc; var = Dsm_sim.Rng.int rng m } ))))
      in
      (* adversarial delays: every (write, dst) pair gets an arbitrary
         delay in [0.1, 200] — deterministic per (dot, dst) *)
      let delay ~src:_ ~dst ~dot =
        let h =
          (Dot.replica dot * 7919) + (Dot.seq dot * 104729) + (dst * 31)
          + seed
        in
        0.1 +. float_of_int (abs h mod 2000) /. 10.
      in
      let outcome =
        Dsm_runtime.Scripted_run.run
          (module Dsm_core.Opt_p)
          ~n ~m ~ops ~delay ()
      in
      let r = Checker.check outcome.Dsm_runtime.Scripted_run.execution in
      Checker.is_clean r && r.Checker.complete
      && r.Checker.unnecessary_delays = 0)

(* ANBKH under the same adversarial schedules: clean and complete, but
   it is allowed unnecessary delays *)
let prop_anbkh_safe_under_adversarial_schedules =
  qcheck_case ~count:20 "ANBKH under arbitrary per-message delays"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Dsm_sim.Rng.create (seed + 17) in
      let n = 3 in
      let m = 2 in
      let ops =
        List.concat
          (List.init n (fun proc ->
               List.init 6 (fun k ->
                   let at = float_of_int ((k * 10) + proc + 1) in
                   if Dsm_sim.Rng.bool rng then
                     ( at,
                       Dsm_runtime.Scripted_run.Write
                         {
                           proc;
                           var = Dsm_sim.Rng.int rng m;
                           value = (proc * 1000) + k;
                         } )
                   else
                     ( at,
                       Dsm_runtime.Scripted_run.Read
                         { proc; var = Dsm_sim.Rng.int rng m } ))))
      in
      let delay ~src:_ ~dst ~dot =
        let h =
          (Dot.replica dot * 104729) + (Dot.seq dot * 7919) + (dst * 977)
          + seed
        in
        0.1 +. float_of_int (abs h mod 2000) /. 10.
      in
      let outcome =
        Dsm_runtime.Scripted_run.run
          (module Dsm_core.Anbkh)
          ~n ~m ~ops ~delay ()
      in
      let r = Checker.check outcome.Dsm_runtime.Scripted_run.execution in
      Checker.is_clean r && r.Checker.complete)


(* -------------------------------------------------------------- *)
(* checker sensitivity: an under-synchronized protocol is caught    *)
(* -------------------------------------------------------------- *)

(* applies respect only the per-sender FIFO gap and ignore
   cross-process dependencies — a classic insufficient condition *)
module Fifo_only : Dsm_core.Protocol.S = struct
  module Mailbox = Dsm_sim.Mailbox
  open Dsm_core.Protocol

  type message = { var : int; value : int; dot : Dot.t }
  type msg = message

  type t = {
    cfg : config;
    me : int;
    store : Dsm_core.Replica_store.t;
    applied : V.t;
    buffer : (int * msg) Mailbox.t;
  }

  let name = "FIFO-only (broken)"

  let create cfg ~me =
    if me < 0 || me >= cfg.n then
      invalid_arg "Fifo_only.create: process id out of range";
    {
      cfg;
      me;
      store = Dsm_core.Replica_store.create ~m:cfg.m;
      applied = V.create cfg.n;
      buffer = Mailbox.create ();
    }

  let me t = t.me

  let grow _t ~n:_ = invalid_arg "Fifo_only.grow: static test protocol"

  let set_generation _t ~gen =
    if gen <> 0 then
      invalid_arg "Fifo_only.set_generation: static test protocol"

  let generation _t = 0
  let adopt _cfg ~me:_ ~gen:_ ~sponsor:_ =
    invalid_arg "Fifo_only.adopt: static test protocol"

  let write t ~var ~value =
    let dot =
      Dot.make ~replica:t.me ~seq:(V.get t.applied t.me + 1)
    in
    Dsm_core.Replica_store.apply t.store ~var ~value ~dot;
    V.tick t.applied t.me;
    ( dot,
      effects
        ~applied:
          [ { adot = dot; avar = var; avalue = value; afrom_buffer = false } ]
        ~to_send:[ Broadcast { var; value; dot } ]
        () )

  let read t ~var = Dsm_core.Replica_store.read t.store ~var

  let deliverable t ~src (m : msg) =
    Dot.seq m.dot = V.get t.applied src + 1

  let apply_msg t ~src (m : msg) ~from_buffer =
    Dsm_core.Replica_store.apply t.store ~var:m.var ~value:m.value
      ~dot:m.dot;
    V.tick t.applied src;
    {
      adot = m.dot;
      avar = m.var;
      avalue = m.value;
      afrom_buffer = from_buffer;
    }

  let drain t =
    let rec go acc =
      match
        Mailbox.take_first t.buffer ~f:(fun (src, m) ->
            deliverable t ~src m)
      with
      | Some (src, m) -> go (apply_msg t ~src m ~from_buffer:true :: acc)
      | None -> List.rev acc
    in
    go []

  let receive t ~src m =
    if deliverable t ~src m then begin
      (* the apply must be let-bound before draining: in
         [apply :: drain t] OCaml may evaluate [drain t] first, and the
         buffer would be scanned against pre-apply state *)
      let first = apply_msg t ~src m ~from_buffer:false in
      effects ~applied:(first :: drain t) ()
    end
    else begin
      Mailbox.add t.buffer (src, m);
      no_effects
    end

  let waiting_for t ~src (m : msg) =
    let seq = Dot.seq m.dot and a = V.get t.applied src in
    if seq <= a + 1 then None (* deliverable or duplicate *)
    else Some (Dot.make ~replica:src ~seq:(seq - 1))

  let buffered t = Mailbox.length t.buffer
  let buffer_high_watermark t = Mailbox.high_watermark t.buffer
  let total_buffered t = Mailbox.total_buffered t.buffer
  let buffer_wakeup_scans t = Mailbox.scans t.buffer
  let applied_vector t = V.copy t.applied
  let local_clock t = V.copy t.applied
  let msg_writes (m : msg) = [ (m.dot, m.var, m.value) ]

  let msg_frame (_ : msg) =
    { Dsm_obs.Wire.kind = "write"; scalars = 2; dots = 1; vectors = [] }

  let pp_msg ppf (m : msg) =
    Format.fprintf ppf "m(x%d := %d)" (m.var + 1) m.value

  let snapshot t = Snapshot.encode t

  let restore cfg ~me s =
    let t : t = Snapshot.decode s in
    Snapshot.check_identity ~proto:"Fifo_only" ~cfg ~me ~cfg':t.cfg
      ~me':t.me;
    t
end

let test_checker_catches_fifo_only () =
  (* across a handful of reordering-heavy seeds, the broken protocol
     must trip the checker at least once (a single seed could get
     lucky); and it must never be reported as losing writes — it is
     live, just unsafe *)
  let caught = ref false in
  List.iter
    (fun seed ->
      let spec =
        Spec.make ~n:4 ~m:3 ~ops_per_process:80 ~write_ratio:0.5
          ~think:(Latency.Exponential { mean = 3. })
          ~seed ()
      in
      let o =
        Sim_run.run
          (module Fifo_only)
          ~spec
          ~latency:(Latency.Uniform { lo = 1.; hi = 150. })
          ~seed:(seed + 1) ()
      in
      let r = Checker.check o.Sim_run.execution in
      Alcotest.(check (list (pair int string)))
        "live: nothing lost" []
        (List.map
           (fun (p, d) -> (p, Dot.to_string d))
           r.Checker.lost);
      if not (Checker.is_clean r) then caught := true)
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool)
    "the missing cross-process condition is detected" true !caught

let () =
  Alcotest.run "properties"
    [
      ( "theorems",
        [
          prop_all_protocols_safe_and_legal;
          prop_optp_no_unnecessary_delays;
          prop_optp_ws_no_unnecessary_delays;
          prop_optp_delays_subset_of_anbkh_write_only;
          prop_optp_delays_all_necessary_cross;
          prop_write_co_characterizes_co;
          prop_corollary2;
          prop_class_p_complete;
          prop_ws_missing_only_skips;
          prop_final_values_causally_maximal;
          prop_direct_equals_optp;
          prop_raw_losses_are_caught;
          prop_reliable_channels_heal_faults;
          prop_optp_clean_under_adversarial_schedules;
          prop_anbkh_safe_under_adversarial_schedules;
          Alcotest.test_case "checker catches FIFO-only protocol" `Quick
            test_checker_catches_fifo_only;
        ] );
    ]
