(* Crash–recovery and partition tolerance.

   Four layers, bottom-up:
   - [Network] partition/crash-mark semantics and the informative
     no-handler failure;
   - [Reliable_channel] under extreme faults (drop=0.9, duplicate=0.5):
     exactly-once delivery, quiescence, backoff stats, and the
     crash-abort hook;
   - [Protocol.S.snapshot]/[restore] round-trips for every protocol;
   - full [Fault_campaign] runs: a fixed-seed schedule on every
     [dune runtest] (tier-1 exercises recovery), the ISSUE's scripted
     8-replica acceptance campaign, and a property sweep over random
     crash/partition schedules asserting that recovered replicas end
     with the same [Apply]/[Write_co] vectors and store as replicas
     that never crashed. *)

module Engine = Dsm_sim.Engine
module Network = Dsm_sim.Network
module Reliable_channel = Dsm_sim.Reliable_channel
module Fault_plan = Dsm_sim.Fault_plan
module Sim_time = Dsm_sim.Sim_time
module Latency = Dsm_sim.Latency
module Rng = Dsm_sim.Rng
module Protocol = Dsm_core.Protocol
module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Spec = Dsm_workload.Spec
module Fault_campaign = Dsm_runtime.Fault_campaign
module Checker = Dsm_runtime.Checker

let flat_latency = Latency.Uniform { lo = 1.; hi = 20. }

(* ---------------------------------------------------------------- *)
(* network: partitions, crash marks, no-handler error                *)
(* ---------------------------------------------------------------- *)

let test_partition_drops () =
  let engine = Engine.create () in
  let rng = Rng.create 7 in
  let net =
    Network.create ~engine ~rng ~n:4
      ~latency:(fun ~src:_ ~dst:_ -> flat_latency)
      ()
  in
  let got = ref [] in
  for dst = 0 to 3 do
    Network.set_handler net dst (fun ~src ~at:_ v ->
        got := (src, dst, v) :: !got)
  done;
  Network.partition net [ [ 0; 1 ]; [ 2; 3 ] ];
  Alcotest.(check bool) "0-2 cut" true (Network.is_cut net ~a:0 ~b:2);
  Alcotest.(check bool) "0-1 open" false (Network.is_cut net ~a:0 ~b:1);
  Network.send net ~src:0 ~dst:1 1;  (* same side: delivered *)
  Network.send net ~src:0 ~dst:2 2;  (* across: dropped *)
  Network.send net ~src:3 ~dst:1 3;  (* across: dropped *)
  ignore (Engine.run engine);
  Alcotest.(check int) "partition drops" 2
    (Network.messages_partition_dropped net);
  Alcotest.(check int) "delivered" 1 (Network.messages_delivered net);
  Network.heal_all net;
  Network.send net ~src:0 ~dst:2 4;
  ignore (Engine.run engine);
  Alcotest.(check int) "delivered after heal" 2
    (Network.messages_delivered net);
  (* in-flight messages survive a cut made after the send *)
  Network.send net ~src:0 ~dst:2 5;
  Network.cut net ~a:0 ~b:2;
  ignore (Engine.run engine);
  Alcotest.(check int) "on-the-wire message still arrives" 3
    (Network.messages_delivered net)

let test_crash_marks () =
  let engine = Engine.create () in
  let rng = Rng.create 8 in
  let net =
    Network.create ~engine ~rng ~n:2
      ~latency:(fun ~src:_ ~dst:_ -> flat_latency)
      ()
  in
  let got = ref 0 in
  Network.set_handler net 0 (fun ~src:_ ~at:_ _ -> incr got);
  Network.set_handler net 1 (fun ~src:_ ~at:_ _ -> incr got);
  Network.mark_crashed net 1;
  Network.send net ~src:0 ~dst:1 1;
  ignore (Engine.run engine);
  (* delivery to a crashed process: counted silent drop, not an error *)
  Alcotest.(check int) "crash drops" 1 (Network.messages_crash_dropped net);
  Alcotest.(check int) "nothing delivered" 0 !got;
  Network.mark_recovered net 1;
  Network.send net ~src:0 ~dst:1 2;
  ignore (Engine.run engine);
  Alcotest.(check int) "delivered after recovery" 1 !got

let test_no_handler_error () =
  let engine = Engine.create () in
  let rng = Rng.create 9 in
  let net =
    Network.create ~engine ~rng ~n:3
      ~latency:(fun ~src:_ ~dst:_ -> flat_latency)
      ()
  in
  Network.send net ~src:2 ~dst:1 42;
  (match Engine.run engine with
  | exception Network.No_handler { dst; src; at } ->
      Alcotest.(check int) "dst" 1 dst;
      Alcotest.(check int) "src" 2 src;
      Alcotest.(check bool) "timestamp positive" true
        (Sim_time.to_float at > 0.)
  | _ -> Alcotest.fail "expected Network.No_handler")

(* ---------------------------------------------------------------- *)
(* reliable channel under extreme faults                             *)
(* ---------------------------------------------------------------- *)

let test_extreme_faults () =
  let engine = Engine.create () in
  let rng = Rng.create 101 in
  let net =
    Network.create ~engine ~rng ~n:3
      ~latency:(fun ~src:_ ~dst:_ -> flat_latency)
      ~faults:{ Network.drop = 0.9; duplicate = 0.5; corrupt = 0. }
      ()
  in
  let channel =
    Reliable_channel.create ~engine ~network:net ~retransmit_after:30. ~rng
      ()
  in
  let deliveries = Hashtbl.create 64 in
  for dst = 0 to 2 do
    Reliable_channel.set_handler channel dst (fun ~src ~at:_ v ->
        let k = (src, dst, v) in
        Hashtbl.replace deliveries k (1 + Option.value ~default:0
                                            (Hashtbl.find_opt deliveries k)))
  done;
  let sent = ref [] in
  for i = 1 to 40 do
    let src = i mod 3 in
    let dst = (i + 1) mod 3 in
    sent := (src, dst, i) :: !sent;
    Reliable_channel.send channel ~src ~dst i
  done;
  (* quiescence despite drop=0.9: every payload eventually acked *)
  (match Engine.run ~max_steps:5_000_000 engine with
  | Engine.Drained -> ()
  | _ -> Alcotest.fail "did not quiesce under extreme faults");
  List.iter
    (fun k ->
      Alcotest.(check (option int))
        "delivered exactly once" (Some 1)
        (Hashtbl.find_opt deliveries k))
    !sent;
  Alcotest.(check int) "exactly-once count" 40
    (Reliable_channel.payloads_delivered channel);
  Alcotest.(check bool) "retransmissions happened" true
    (Reliable_channel.retransmissions channel > 0);
  Alcotest.(check int) "unacked reaches 0" 0
    (Reliable_channel.unacked channel);
  Alcotest.(check int) "nothing aborted" 0 (Reliable_channel.aborted channel)

(* abort_peer stops retransmission toward a crashed process: without
   it, the engine would never drain (the partitioned frames are dropped
   forever and the timers re-arm at the backoff cap for eternity) *)
let test_abort_peer () =
  let engine = Engine.create () in
  let rng = Rng.create 55 in
  let net =
    Network.create ~engine ~rng ~n:2
      ~latency:(fun ~src:_ ~dst:_ -> flat_latency)
      ()
  in
  let channel =
    Reliable_channel.create ~engine ~network:net ~retransmit_after:10. ()
  in
  Reliable_channel.set_handler channel 0 (fun ~src:_ ~at:_ _ -> ());
  Reliable_channel.set_handler channel 1 (fun ~src:_ ~at:_ _ -> ());
  Network.mark_crashed net 1;
  Reliable_channel.send channel ~src:0 ~dst:1 1;
  Reliable_channel.send channel ~src:0 ~dst:1 2;
  (* let a few retransmissions burn, bounded run *)
  ignore (Engine.run ~until:(Sim_time.of_float 200.) engine);
  Alcotest.(check int) "both unacked" 2 (Reliable_channel.unacked channel);
  let n_aborted = Reliable_channel.abort_peer channel ~peer:1 in
  Alcotest.(check int) "two payloads aborted" 2 n_aborted;
  Alcotest.(check int) "unacked zero after abort" 0
    (Reliable_channel.unacked channel);
  (match Engine.run ~max_steps:100_000 engine with
  | Engine.Drained -> ()
  | _ -> Alcotest.fail "abort_peer must let the engine drain")

(* the first retransmission interval is unchanged (seed-compatible):
   with default settings and no rng, a single retransmission fires at
   exactly retransmit_after after the send *)
let test_backoff_growth () =
  let engine = Engine.create () in
  let rng = Rng.create 56 in
  let net =
    Network.create ~engine ~rng ~n:2
      ~latency:(fun ~src:_ ~dst:_ -> Latency.Constant 1.)
      ()
  in
  let channel =
    Reliable_channel.create ~engine ~network:net ~retransmit_after:10.
      ~backoff:2. ~backoff_cap:40. ()
  in
  Reliable_channel.set_handler channel 0 (fun ~src:_ ~at:_ _ -> ());
  Reliable_channel.set_handler channel 1 (fun ~src:_ ~at:_ _ -> ());
  Network.cut net ~a:0 ~b:1;
  Reliable_channel.send channel ~src:0 ~dst:1 7;
  (* intervals: 10, 20, 40, 40 (capped), ... -> retransmissions at
     t=10,30,70,110,150 *)
  ignore (Engine.run ~until:(Sim_time.of_float 111.) engine);
  Alcotest.(check int) "capped exponential schedule" 4
    (Reliable_channel.retransmissions channel);
  ignore (Reliable_channel.abort_peer channel ~peer:1);
  ignore (Engine.run engine)

(* ---------------------------------------------------------------- *)
(* snapshot / restore round-trips                                    *)
(* ---------------------------------------------------------------- *)

let exchange (type pt pm)
    (module P : Protocol.S with type t = pt and type msg = pm) =
  (* a 3-process hand-run: p0 writes twice, p1 receives one of them *)
  let cfg = Protocol.config ~n:3 ~m:2 in
  let p0 = P.create cfg ~me:0 and p1 = P.create cfg ~me:1 in
  let msgs = ref [] in
  let step proto ~var ~value =
    let _, (eff : pm Protocol.effects) = P.write proto ~var ~value in
    List.iter
      (function
        | Protocol.Broadcast m -> msgs := m :: !msgs
        | Protocol.Unicast { msg; _ } -> msgs := msg :: !msgs)
      eff.to_send
  in
  step p0 ~var:0 ~value:11;
  step p0 ~var:1 ~value:12;
  (match List.rev !msgs with
  | first :: _ -> ignore (P.receive p1 ~src:0 first)
  | [] -> ());
  (p0, p1, cfg)

let snapshot_case (name, pack) =
  let run () =
    match pack with
    | Protocol.Packed (module P) ->
        let p0, p1, cfg = exchange (module P) in
        let image = P.snapshot p1 in
        let r = P.restore cfg ~me:1 image in
        Alcotest.(check (array int))
          "Apply preserved"
          (V.to_array (P.applied_vector p1))
          (V.to_array (P.applied_vector r));
        Alcotest.(check (array int))
          "clock preserved"
          (V.to_array (P.local_clock p1))
          (V.to_array (P.local_clock r));
        Alcotest.(check int) "pending buffer preserved" (P.buffered p1)
          (P.buffered r);
        for var = 0 to 1 do
          Alcotest.(check bool)
            (Printf.sprintf "store var %d preserved" var)
            true
            (P.read p1 ~var = P.read r ~var)
        done;
        (* the image is a deep copy: mutating the origin after the
           snapshot must not leak into the restored state *)
        let before = V.to_array (P.applied_vector r) in
        ignore (P.write p1 ~var:0 ~value:99);
        Alcotest.(check (array int))
          "no sharing with the live state" before
          (V.to_array (P.applied_vector r));
        (* identity guards *)
        (try
           ignore (P.restore cfg ~me:2 image);
           Alcotest.fail "restore with wrong process must fail"
         with Invalid_argument _ -> ());
        (try
           ignore (P.restore (Protocol.config ~n:4 ~m:2) ~me:1 image);
           Alcotest.fail "restore with wrong config must fail"
         with Invalid_argument _ -> ());
        ignore p0
  in
  Alcotest.test_case name `Quick run

let all_protocols =
  [
    ("OptP", Protocol.Packed (module Dsm_core.Opt_p));
    ("OptP/scan", Protocol.Packed (module Dsm_core.Opt_p.Scan));
    ("ANBKH", Protocol.Packed (module Dsm_core.Anbkh));
    ("OptP-WS", Protocol.Packed (module Dsm_core.Opt_p_ws));
    ("WS-recv", Protocol.Packed (module Dsm_core.Ws_receiver));
    ("WS-token", Protocol.Packed (module Dsm_core.Ws_token));
    ("OptP-direct", Protocol.Packed (module Dsm_core.Opt_p_direct));
  ]

let test_partial_snapshot () =
  let module Pp = Dsm_core.Opt_p_partial in
  let repl = Dsm_core.Replication.ring ~n:3 ~m:4 ~degree:2 in
  let p = Pp.create repl ~me:0 in
  let var =
    List.hd (Dsm_core.Replication.vars_of repl ~proc:0)
  in
  ignore (Pp.write p ~var ~value:5);
  let image = Pp.snapshot p in
  let r = Pp.restore repl ~me:0 image in
  Alcotest.(check bool) "matrix preserved" true
    (Array.map V.to_array (Pp.applied_matrix p)
    = Array.map V.to_array (Pp.applied_matrix r));
  Alcotest.(check bool) "read preserved" true
    (Pp.read p ~var = Pp.read r ~var);
  try
    ignore (Pp.restore repl ~me:1 image);
    Alcotest.fail "restore with wrong process must fail"
  with Invalid_argument _ -> ()

(* ---------------------------------------------------------------- *)
(* fault plans                                                       *)
(* ---------------------------------------------------------------- *)

let test_plan_validation () =
  let t f = Sim_time.of_float f in
  let ok =
    Fault_plan.make
      [
        Fault_plan.Recover { proc = 1; at = t 300. };
        Fault_plan.Crash { proc = 1; at = t 100. };
        Fault_plan.Cut { groups = [ [ 0 ]; [ 1; 2 ] ]; at = t 50. };
        Fault_plan.Heal { at = t 200. };
      ]
  in
  Fault_plan.validate ~n:3 ok;
  Alcotest.(check (list int)) "nobody down at end" []
    (Fault_plan.down_at_end ok);
  Alcotest.(check (list int)) "down at end" [ 2 ]
    (Fault_plan.down_at_end
       (Fault_plan.make [ Fault_plan.Crash { proc = 2; at = t 10. } ]));
  let bad =
    Fault_plan.make
      [
        Fault_plan.Crash { proc = 0; at = t 10. };
        Fault_plan.Crash { proc = 0; at = t 20. };
      ]
  in
  (try
     Fault_plan.validate ~n:3 bad;
     Alcotest.fail "double crash must be rejected"
   with Invalid_argument _ -> ());
  (try
     Fault_plan.validate ~n:2
       [ Fault_plan.Recover { proc = 0; at = t 5. } ];
     Alcotest.fail "recovery of a live process must be rejected"
   with Invalid_argument _ -> ());
  (* random plans are always valid *)
  let rng = Rng.create 4242 in
  for _ = 1 to 50 do
    let plan =
      Fault_plan.random rng ~n:6 ~horizon:1000. ~crashes:2 ~partitions:2 ()
    in
    Fault_plan.validate ~n:6 plan
  done

(* ---------------------------------------------------------------- *)
(* fault campaigns                                                   *)
(* ---------------------------------------------------------------- *)

let small_plan =
  let t f = Sim_time.of_float f in
  Fault_plan.make
    [
      Fault_plan.Crash { proc = 1; at = t 120. };
      Fault_plan.Cut { groups = [ [ 0; 1 ]; [ 2; 3 ] ]; at = t 150. };
      Fault_plan.Heal { at = t 260. };
      Fault_plan.Recover { proc = 1; at = t 320. };
    ]

let small_spec seed =
  Spec.make ~n:4 ~m:3 ~ops_per_process:40 ~write_ratio:0.5
    ~think:(Latency.Exponential { mean = 10. })
    ~seed ()

let check_campaign ?(optimal = true) name (o : Fault_campaign.outcome) =
  let ctx s = Printf.sprintf "%s: %s" name s in
  Alcotest.(check bool)
    (ctx "causally consistent (checker clean modulo down replicas)")
    true o.clean;
  (* Theorem 4 is OptP's property; ANBKH produces false-causality
     delays by design, crash or no crash *)
  if optimal then
    Alcotest.(check int)
      (ctx "no unnecessary delays despite recovery")
      0 o.report.Checker.unnecessary_delays;
  Alcotest.(check bool) (ctx "live replicas converged") true o.live_equal;
  List.iter
    (fun (r : Fault_campaign.recovery) ->
      Alcotest.(check bool)
        (ctx (Printf.sprintf "p%d caught up" (r.rproc + 1)))
        true
        (r.caught_up_at <> None))
    o.recoveries

(* the tier-1 fixed-seed schedule: every `dune runtest` exercises a
   crash, a partition, recovery and anti-entropy *)
let test_fixed_campaign_optp () =
  let o =
    Fault_campaign.run
      (module Dsm_core.Opt_p)
      ~spec:(small_spec 11)
      ~latency:(Latency.Exponential { mean = 8. })
      ~plan:small_plan ~seed:3 ()
  in
  check_campaign "OptP fixed" o;
  Alcotest.(check int) "one recovery" 1 (List.length o.recoveries);
  Alcotest.(check bool) "sync traffic happened" true (o.sync_requests > 0);
  Alcotest.(check bool) "partition dropped frames" true
    (o.frames_partition_dropped > 0)

let test_fixed_campaign_anbkh () =
  let o =
    Fault_campaign.run
      (module Dsm_core.Anbkh)
      ~spec:(small_spec 12)
      ~latency:(Latency.Exponential { mean = 8. })
      ~plan:small_plan ~seed:4 ()
  in
  check_campaign ~optimal:false "ANBKH fixed" o

(* the ISSUE's acceptance schedule: 8 replicas, 2 crash mid-run, a
   500-time-unit partition, heal, recover, quiesce *)
let acceptance_plan =
  let t f = Sim_time.of_float f in
  Fault_plan.make
    [
      Fault_plan.Cut
        { groups = [ [ 0; 1; 2; 3 ]; [ 4; 5; 6; 7 ] ]; at = t 300. };
      Fault_plan.Crash { proc = 2; at = t 400. };
      Fault_plan.Crash { proc = 5; at = t 500. };
      Fault_plan.Heal { at = t 800. };
      Fault_plan.Recover { proc = 2; at = t 1000. };
      Fault_plan.Recover { proc = 5; at = t 1100. };
    ]

let acceptance_spec =
  Spec.make ~n:8 ~m:4 ~ops_per_process:60 ~write_ratio:0.4
    ~think:(Latency.Exponential { mean = 20. })
    ~seed:2026 ()

let test_acceptance_campaign () =
  let o =
    Fault_campaign.run
      (module Dsm_core.Opt_p)
      ~spec:acceptance_spec
      ~latency:(Latency.Exponential { mean = 10. })
      ~plan:acceptance_plan ~seed:5 ()
  in
  check_campaign "acceptance" o;
  Alcotest.(check (list int)) "everyone lives at the end" []
    o.down_at_end;
  Alcotest.(check int) "two recoveries" 2 (List.length o.recoveries);
  Alcotest.(check int) "all 8 replicas compared" 8
    (List.length o.final_states);
  (* byte-identical: the per-field comparison that live_equal certifies
     is re-checked here through the serialized states of the ISSUE *)
  Alcotest.(check bool) "replayed or nothing missed" true
    (o.replayed_writes >= 0);
  Alcotest.(check bool) "partition was felt" true
    (o.frames_partition_dropped > 0);
  Alcotest.(check bool) "crashes were felt" true
    (o.frames_crash_dropped > 0 || o.aborted_payloads > 0)

(* property: random crash/partition schedules; a recovered replica's
   Write_co/Apply equal those of a never-crashed replica after
   quiescence + settle *)
let test_random_campaigns () =
  let rng = Rng.create 777 in
  for seed = 1 to 12 do
    let n = 4 + (seed mod 3) in
    let crashes = 1 + (seed mod 2) in
    let plan =
      Fault_plan.random rng ~n ~horizon:600. ~crashes ~partitions:1 ()
    in
    let spec =
      Spec.make ~n ~m:3 ~ops_per_process:30 ~write_ratio:0.5
        ~think:(Latency.Exponential { mean = 12. })
        ~seed ()
    in
    let o =
      Fault_campaign.run
        (module Dsm_core.Opt_p)
        ~spec
        ~latency:(Latency.Exponential { mean = 9. })
        ~plan ~seed:(seed * 13) ()
    in
    let name = Printf.sprintf "random seed %d" seed in
    check_campaign name o;
    (* explicit satellite assertion: recovered vs never-crashed *)
    let crashed_procs =
      List.map (fun (r : Fault_campaign.recovery) -> r.rproc) o.recoveries
    in
    let witness =
      List.find_opt
        (fun (s : Fault_campaign.replica_state) ->
          not (List.mem s.sproc crashed_procs))
        o.final_states
    in
    match witness with
    | None -> ()
    | Some w ->
        List.iter
          (fun (s : Fault_campaign.replica_state) ->
            if List.mem s.sproc crashed_procs then begin
              Alcotest.(check (array int))
                (name ^ ": recovered Apply = never-crashed Apply")
                w.sapplied s.sapplied;
              Alcotest.(check (array int))
                (name ^ ": recovered Write_co = never-crashed Write_co")
                w.sclock s.sclock;
              Alcotest.(check bool)
                (name ^ ": recovered store = never-crashed store")
                true
                (s.sstore = w.sstore)
            end)
          o.final_states
  done

(* a process that never recovers: the campaign still checks clean, the
   corpse is excused from completeness *)
let test_unrecovered_crash () =
  let t f = Sim_time.of_float f in
  let plan =
    Fault_plan.make [ Fault_plan.Crash { proc = 3; at = t 150. } ]
  in
  let o =
    Fault_campaign.run
      (module Dsm_core.Opt_p)
      ~spec:(small_spec 21)
      ~latency:(Latency.Exponential { mean = 8. })
      ~plan ~seed:9 ()
  in
  Alcotest.(check (list int)) "p4 stays down" [ 3 ] o.down_at_end;
  Alcotest.(check bool) "still clean" true o.clean;
  Alcotest.(check bool) "live replicas still converge" true o.live_equal;
  Alcotest.(check int) "three live states" 3 (List.length o.final_states)

(* regression: a permanently-crashed process whose pre-crash broadcasts
   were partially lost (drop faults) must neither keep the simulation
   alive forever — acks to the corpse are crash-dropped, so its send
   queue is abandoned at crash time — nor leave the survivors diverged:
   live-replica gossip re-disseminates whatever any of them applied *)
let test_permanent_crash_lossy () =
  let spec =
    Spec.make ~n:6 ~m:4 ~ops_per_process:40 ~write_ratio:0.5
      ~think:(Latency.Exponential { mean = 10. })
      ~seed:7 ()
  in
  let t f = Sim_time.of_float f in
  let plan =
    Fault_plan.make
      [
        Fault_plan.Crash { proc = 2; at = t 200. };
        Fault_plan.Crash { proc = 4; at = t 250. };
        Fault_plan.Cut { groups = [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ]; at = t 300. };
        Fault_plan.Heal { at = t 500. };
        Fault_plan.Recover { proc = 2; at = t 600. };
      ]
  in
  let o =
    Fault_campaign.run
      (module Dsm_core.Opt_p)
      ~spec
      ~latency:(Latency.Exponential { mean = 12. })
      ~faults:{ Network.drop = 0.15; duplicate = 0.; corrupt = 0. }
      ~plan ~seed:7 ()
  in
  check_campaign "permanent crash + lossy links" o;
  Alcotest.(check (list int)) "p4 stays down" [ 4 ] o.down_at_end;
  Alcotest.(check int) "one recovery" 1 (List.length o.recoveries);
  Alcotest.(check int) "five live states" 5 (List.length o.final_states);
  Alcotest.(check bool) "the corpse's send queue was abandoned" true
    (o.aborted_payloads > 0)

let () =
  Alcotest.run "recovery"
    [
      ( "network faults",
        [
          Alcotest.test_case "partition drops at send time" `Quick
            test_partition_drops;
          Alcotest.test_case "crashed delivery is a counted drop" `Quick
            test_crash_marks;
          Alcotest.test_case "no-handler error carries context" `Quick
            test_no_handler_error;
        ] );
      ( "reliable channel",
        [
          Alcotest.test_case "exactly-once under drop=0.9 dup=0.5" `Quick
            test_extreme_faults;
          Alcotest.test_case "abort_peer stops retransmission" `Quick
            test_abort_peer;
          Alcotest.test_case "capped exponential backoff" `Quick
            test_backoff_growth;
        ] );
      ("snapshot/restore", List.map snapshot_case all_protocols
                           @ [
                               Alcotest.test_case "OptP-partial" `Quick
                                 test_partial_snapshot;
                             ]);
      ( "fault plans",
        [ Alcotest.test_case "validation + random" `Quick
            test_plan_validation ] );
      ( "campaigns",
        [
          Alcotest.test_case "fixed seed, OptP" `Quick
            test_fixed_campaign_optp;
          Alcotest.test_case "fixed seed, ANBKH" `Quick
            test_fixed_campaign_anbkh;
          Alcotest.test_case "8 replicas, 2 crashes, 500-unit partition"
            `Quick test_acceptance_campaign;
          Alcotest.test_case "random schedules converge" `Quick
            test_random_campaigns;
          Alcotest.test_case "unrecovered crash is excused" `Quick
            test_unrecovered_crash;
          Alcotest.test_case "permanent crash under lossy links" `Quick
            test_permanent_crash_lossy;
        ] );
    ]
