(* Tests for the runtime layer: Execution recording/queries, Sim_run
   driving, Checker verdicts (including deliberately broken runs), and
   the Experiment plumbing. *)

module Execution = Dsm_runtime.Execution
module Sim_run = Dsm_runtime.Sim_run
module Scripted_run = Dsm_runtime.Scripted_run
module Checker = Dsm_runtime.Checker
module Experiment = Dsm_runtime.Experiment
module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Sim_time = Dsm_sim.Sim_time
module Dot = Dsm_vclock.Dot
module V = Dsm_vclock.Vector_clock
module Operation = Dsm_memory.Operation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let dot r s = Dot.make ~replica:r ~seq:s
let t f = Sim_time.of_float f

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* a tiny hand-written execution: p0 writes, p1 receives and applies,
   then reads *)
let mini_execution () =
  let e = Execution.create ~n:2 ~m:1 () in
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 7; delayed = false });
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Send { dot = dot 0 1; var = 0; value = 7 });
  Execution.record e ~proc:1 ~time:(t 2.)
    (Execution.Receipt { dot = dot 0 1; src = 0 });
  Execution.record e ~proc:1 ~time:(t 2.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 7; delayed = false });
  Execution.record e ~proc:1 ~time:(t 3.)
    (Execution.Return
       { var = 0; value = Operation.Val 7; read_from = Some (dot 0 1) });
  e

let test_execution_queries () =
  let e = mini_execution () in
  check_int "events" 5 (Execution.event_count e);
  check_int "events at p0" 2 (List.length (Execution.events_of e 0));
  check_int "events at p1" 3 (List.length (Execution.events_of e 1));
  Alcotest.(check (list string)) "apply order at p1" [ "w1#1" ]
    (List.map Dot.to_string (Execution.apply_order e 1));
  check_bool "apply position" true
    (Execution.apply_position e ~proc:1 ~dot:(dot 0 1) = Some 1);
  check_bool "receipt position" true
    (Execution.receipt_position e ~proc:1 ~dot:(dot 0 1) = Some 0);
  check_bool "apply time" true
    (Execution.apply_time e ~proc:1 ~dot:(dot 0 1) = Some (t 2.));
  check_int "no delays" 0 (Execution.delay_count e);
  check_int "applies" 2 (Execution.apply_count e);
  check_int "skips" 0 (Execution.skip_count e)

let test_execution_writes_and_history () =
  let e = mini_execution () in
  (match Execution.writes e with
  | [ (d, 0, 7) ] -> check_bool "the write" true (Dot.equal d (dot 0 1))
  | _ -> Alcotest.fail "expected one write");
  let h = Execution.to_history e in
  check_int "ops" 2 (Dsm_memory.History.op_count h);
  check_bool "well-formed" true (Dsm_memory.History.validate h = Ok ())

let test_execution_apply_latencies () =
  let e = mini_execution () in
  Alcotest.(check (list (float 1e-9))) "remote apply latency 0" [ 0. ]
    (Execution.apply_latencies e)

let test_execution_rejects_bad_proc () =
  let e = Execution.create ~n:2 ~m:1 () in
  Alcotest.check_raises "record"
    (Invalid_argument "Execution.record: process id out of range")
    (fun () ->
      Execution.record e ~proc:2 ~time:(t 0.) (Execution.Skip { dot = dot 0 1 }))

let test_execution_out_of_order_own_writes_rejected () =
  let e = Execution.create ~n:1 ~m:1 () in
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Apply { dot = dot 0 2; var = 0; value = 1; delayed = false });
  Execution.record e ~proc:0 ~time:(t 1.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 2; delayed = false });
  check_bool "to_history raises" true
    (try
       ignore (Execution.to_history e);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Sim_run                                                             *)
(* ------------------------------------------------------------------ *)

let small_spec = Spec.make ~n:3 ~m:2 ~ops_per_process:40 ~seed:5 ()

let test_sim_run_deterministic () =
  let run () =
    Sim_run.run (module Dsm_core.Opt_p) ~spec:small_spec
      ~latency:(Latency.Exponential { mean = 10. })
      ~seed:2 ()
  in
  let o1 = run () and o2 = run () in
  check_int "same events" (Execution.event_count o1.Sim_run.execution)
    (Execution.event_count o2.Sim_run.execution);
  check_int "same delays" (Execution.delay_count o1.Sim_run.execution)
    (Execution.delay_count o2.Sim_run.execution);
  check_bool "same histories" true
    (Dsm_memory.History.ops o1.Sim_run.history
    = Dsm_memory.History.ops o2.Sim_run.history)

let test_sim_run_message_count () =
  (* every write broadcasts to n-1 destinations *)
  let o =
    Sim_run.run (module Dsm_core.Opt_p) ~spec:small_spec
      ~latency:(Latency.Constant 1.) ()
  in
  let writes = List.length (Execution.writes o.Sim_run.execution) in
  check_int "msgs = writes * (n-1)" (writes * 2) o.Sim_run.messages_sent;
  check_int "all delivered" o.Sim_run.messages_sent o.Sim_run.messages_delivered

let test_sim_run_constant_latency_no_delay_for_optp () =
  (* constant latency + broadcast at write time: messages from one
     process arrive in order everywhere and cross-process dependencies
     are always satisfied (the dependency's message left earlier and
     arrives earlier). OptP should never delay. *)
  let o =
    Sim_run.run (module Dsm_core.Opt_p)
      ~spec:(Spec.make ~n:4 ~m:3 ~ops_per_process:60 ~seed:9 ())
      ~latency:(Latency.Constant 5.) ()
  in
  check_int "no delays" 0 (Execution.delay_count o.Sim_run.execution)

let test_sim_run_fifo_flag () =
  let o =
    Sim_run.run (module Dsm_core.Anbkh) ~spec:small_spec
      ~latency:(Latency.Uniform { lo = 1.; hi = 50. })
      ~fifo:true ()
  in
  let report = Checker.check o.Sim_run.execution in
  check_bool "clean under fifo" true (Checker.is_clean report)

let test_sim_run_write_value_unique () =
  check_bool "distinct" true
    (Sim_run.write_value ~proc:1 ~seq:1 <> Sim_run.write_value ~proc:0 ~seq:1);
  check_int "encodes proc and seq" 2_000_003
    (Sim_run.write_value ~proc:2 ~seq:3)

(* ------------------------------------------------------------------ *)
(* Checker on deliberately broken executions                           *)
(* ------------------------------------------------------------------ *)

(* two writes of p0 applied in the wrong order at p1 *)
let test_checker_detects_misorder () =
  let e = Execution.create ~n:2 ~m:1 () in
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  Execution.record e ~proc:0 ~time:(t 1.)
    (Execution.Apply { dot = dot 0 2; var = 0; value = 2; delayed = false });
  Execution.record e ~proc:1 ~time:(t 2.)
    (Execution.Apply { dot = dot 0 2; var = 0; value = 2; delayed = false });
  Execution.record e ~proc:1 ~time:(t 3.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  let r = Checker.check e in
  check_bool "not clean" false (Checker.is_clean r);
  check_bool "a safety violation" true
    (List.exists
       (function Checker.Safety _ -> true | _ -> false)
       r.Checker.violations)

(* a run where a write never reaches p1 *)
let test_checker_detects_lost_write () =
  let e = Execution.create ~n:2 ~m:1 () in
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  let r = Checker.check e in
  check_bool "incomplete" false r.Checker.complete;
  check_int "one lost" 1 (List.length r.Checker.lost);
  check_bool "not clean" false (Checker.is_clean r)

(* skip events legitimize missing applies *)
let test_checker_skip_is_not_lost () =
  let e = Execution.create ~n:2 ~m:1 () in
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  Execution.record e ~proc:0 ~time:(t 1.)
    (Execution.Apply { dot = dot 0 2; var = 0; value = 2; delayed = false });
  Execution.record e ~proc:1 ~time:(t 2.)
    (Execution.Skip { dot = dot 0 1 });
  Execution.record e ~proc:1 ~time:(t 2.)
    (Execution.Apply { dot = dot 0 2; var = 0; value = 2; delayed = false });
  let r = Checker.check e in
  check_bool "incomplete (class P)" false r.Checker.complete;
  check_int "nothing lost" 0 (List.length r.Checker.lost);
  check_bool "clean" true (Checker.is_clean r);
  check_int "one skip" 1 r.Checker.skipped

(* a false 'delayed' flag without receipt is flagged *)
let test_checker_detects_bogus_delay_flag () =
  let e = Execution.create ~n:1 ~m:1 () in
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = true });
  let r = Checker.check e in
  check_bool "accounting violation" true
    (List.exists
       (function
         | Checker.Immediate_apply_marked_delayed _ -> true
         | _ -> false)
       r.Checker.violations)

(* delay classification: direct construction of both classes *)
let test_checker_delay_classes () =
  let e = Execution.create ~n:2 ~m:2 () in
  (* p0 writes w1 then w2 (independent vars, no reads) *)
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  Execution.record e ~proc:0 ~time:(t 1.)
    (Execution.Apply { dot = dot 0 2; var = 1; value = 2; delayed = false });
  (* p1 receives w2 first (its predecessor w1 missing: delaying it is
     necessary), then w1, applies w1, then w2 from the buffer *)
  Execution.record e ~proc:1 ~time:(t 2.)
    (Execution.Receipt { dot = dot 0 2; src = 0 });
  Execution.record e ~proc:1 ~time:(t 3.)
    (Execution.Receipt { dot = dot 0 1; src = 0 });
  Execution.record e ~proc:1 ~time:(t 3.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  Execution.record e ~proc:1 ~time:(t 3.)
    (Execution.Apply { dot = dot 0 2; var = 1; value = 2; delayed = true });
  let r = Checker.check e in
  check_bool "clean" true (Checker.is_clean r);
  check_int "one delay" 1 r.Checker.total_delays;
  check_int "necessary" 1 r.Checker.necessary_delays;
  (match r.Checker.delays with
  | [ d ] ->
      Alcotest.(check (list string)) "blocked on w1" [ "w1#1" ]
        (List.map Dot.to_string d.Checker.dblocking)
  | _ -> Alcotest.fail "expected one delay record");
  (* now an unnecessary delay: same receipt order but w1 was already
     applied when w2 arrived *)
  let e2 = Execution.create ~n:2 ~m:2 () in
  Execution.record e2 ~proc:0 ~time:(t 0.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  Execution.record e2 ~proc:0 ~time:(t 1.)
    (Execution.Apply { dot = dot 0 2; var = 1; value = 2; delayed = false });
  Execution.record e2 ~proc:1 ~time:(t 2.)
    (Execution.Receipt { dot = dot 0 1; src = 0 });
  Execution.record e2 ~proc:1 ~time:(t 2.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  Execution.record e2 ~proc:1 ~time:(t 3.)
    (Execution.Receipt { dot = dot 0 2; src = 0 });
  (* the protocol needlessly buffers w2 and applies it later *)
  Execution.record e2 ~proc:1 ~time:(t 4.)
    (Execution.Receipt { dot = dot 1 1; src = 0 });
  Execution.record e2 ~proc:1 ~time:(t 4.)
    (Execution.Apply { dot = dot 0 2; var = 1; value = 2; delayed = true });
  let r2 = Checker.check e2 in
  check_int "unnecessary" 1 r2.Checker.unnecessary_delays;
  ignore r2.Checker.delays

(* stale read detection through a full (hand-made) execution *)
let test_checker_detects_stale_read () =
  let e = Execution.create ~n:2 ~m:1 () in
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  Execution.record e ~proc:0 ~time:(t 1.)
    (Execution.Apply { dot = dot 0 2; var = 0; value = 2; delayed = false });
  (* p1 reads the NEW value first (so w2 in its past), then the old *)
  Execution.record e ~proc:1 ~time:(t 2.)
    (Execution.Apply { dot = dot 0 1; var = 0; value = 1; delayed = false });
  Execution.record e ~proc:1 ~time:(t 2.5)
    (Execution.Apply { dot = dot 0 2; var = 0; value = 2; delayed = false });
  Execution.record e ~proc:1 ~time:(t 3.)
    (Execution.Return
       { var = 0; value = Operation.Val 2; read_from = Some (dot 0 2) });
  Execution.record e ~proc:1 ~time:(t 4.)
    (Execution.Return
       { var = 0; value = Operation.Val 1; read_from = Some (dot 0 1) });
  let r = Checker.check e in
  check_bool "illegal read found" true
    (List.exists
       (function Checker.Illegal_read _ -> true | _ -> false)
       r.Checker.violations)

(* ------------------------------------------------------------------ *)
(* Experiment plumbing                                                 *)
(* ------------------------------------------------------------------ *)

let test_send_vectors_fidge_mattern () =
  (* hand-built execution: p0 sends w1; p1 receives it then sends w2;
     FM timestamps must be [1;0] and [1;1] *)
  let e = Execution.create ~n:2 ~m:1 () in
  Execution.record e ~proc:0 ~time:(t 0.)
    (Execution.Send { dot = dot 0 1; var = 0; value = 1 });
  Execution.record e ~proc:1 ~time:(t 1.)
    (Execution.Receipt { dot = dot 0 1; src = 0 });
  Execution.record e ~proc:1 ~time:(t 2.)
    (Execution.Send { dot = dot 1 1; var = 0; value = 2 });
  let vecs = Experiment.send_vectors e in
  Alcotest.(check (list int)) "w1 stamp" [ 1; 0 ]
    (V.to_list (Dot.Map.find (dot 0 1) vecs));
  Alcotest.(check (list int)) "w2 stamp" [ 1; 1 ]
    (V.to_list (Dot.Map.find (dot 1 1) vecs))

let test_measure_produces_metrics () =
  let r =
    Experiment.measure (module Dsm_core.Opt_p) ~spec:small_spec
      ~latency:(Latency.Exponential { mean = 10. })
      ()
  in
  check_bool "clean" true r.Experiment.clean;
  Alcotest.(check string) "name" "OptP" r.Experiment.protocol;
  check_bool "applies positive" true (r.Experiment.applies > 0);
  check_int "OptP never unnecessary" 0 r.Experiment.unnecessary

let test_tables_nonempty () =
  check_int "table 1 rows" 12
    (Dsm_stats.Table_fmt.row_count (Experiment.table1 ()));
  check_int "table 2 rows" 12
    (Dsm_stats.Table_fmt.row_count (Experiment.table2 ()));
  check_bool "figure 7 text" true (String.length (Experiment.figure7 ()) > 0)


(* experiment harness smoke tests with tiny parameters: each Q function
   must produce a well-formed table without tripping its internal
   checker audits *)
let test_experiments_smoke () =
  let seeds = [ 1 ] and ops = 30 in
  let tables =
    [
      ("q1", Experiment.q1_sweep_processes ~ns:[ 2; 3 ] ~seeds ~ops ());
      ("q2", Experiment.q2_sweep_latency_variance ~sigmas:[ 0.; 1. ] ~seeds ~ops ());
      ("q3", Experiment.q3_sweep_write_ratio ~ratios:[ 0.3; 0.7 ] ~seeds ~ops ());
      ("q4", Experiment.q4_buffer_occupancy ~seeds ~ops ());
      ("q5", Experiment.q5_apply_latency ~seeds ~ops ());
      ("q6", Experiment.q6_ws_skips ~seeds ~ops ());
      ("q7", Experiment.q7_fifo_ablation ~seeds ~ops ());
      ("q8", Experiment.q8_lossy_links ~drops:[ 0.; 0.2 ] ~seeds ~ops ());
      ("q9", Experiment.q9_divergence ~ratios:[ 0.5 ] ~seeds ~ops ());
      ("q10", Experiment.q10_metadata_size ~ns:[ 3; 4 ] ~seeds ~ops ());
      ("q11", Experiment.q11_partial_replication ~degrees:[ 3; 2 ] ~seeds ~ops ());
    ]
  in
  List.iter
    (fun (name, t) ->
      check_bool (name ^ " non-empty") true
        (Dsm_stats.Table_fmt.row_count t > 0))
    tables

let test_figures_smoke () =
  List.iter
    (fun (name, s) ->
      check_bool (name ^ " non-empty") true (String.length s > 0))
    [
      ("f1", Experiment.figure1 ());
      ("f2", Experiment.figure2 ());
      ("f3", Experiment.figure3 ());
      ("f6", Experiment.figure6 ());
      ("f7", Experiment.figure7 ());
      ("q5hist", Experiment.q5_histogram ~ops:40 ());
    ]

(* every protocol stays clean on every paper scenario schedule *)
let test_all_protocols_on_scenarios () =
  List.iter
    (fun (s : Dsm_runtime.Paper_scenarios.t) ->
      List.iter
        (fun p ->
          let o = Dsm_runtime.Paper_scenarios.run p s in
          let r = Checker.check o.Scripted_run.execution in
          check_bool (s.label ^ ": clean") true (Checker.is_clean r))
        [ (module Dsm_core.Opt_p : Dsm_core.Protocol.S);
          (module Dsm_core.Anbkh);
          (module Dsm_core.Ws_receiver);
          (module Dsm_core.Opt_p_ws);
          (module Dsm_core.Opt_p_direct) ])
    Dsm_runtime.Paper_scenarios.all


(* degenerate configurations *)
let test_single_process_run () =
  let spec = Spec.make ~n:1 ~m:2 ~ops_per_process:20 ~seed:3 () in
  List.iter
    (fun p ->
      let o =
        Sim_run.run p ~spec ~latency:(Latency.Constant 1.) ~seed:1 ()
      in
      let r = Checker.check o.Sim_run.execution in
      check_bool "clean" true (Checker.is_clean r);
      check_int "no messages with one process" 0 o.Sim_run.messages_sent)
    [ (module Dsm_core.Opt_p : Dsm_core.Protocol.S);
      (module Dsm_core.Anbkh);
      (module Dsm_core.Ws_token) ]

let test_empty_workload_run () =
  let spec = Spec.make ~n:3 ~m:2 ~ops_per_process:0 ~seed:3 () in
  let o =
    Sim_run.run (module Dsm_core.Opt_p) ~spec
      ~latency:(Latency.Constant 1.) ()
  in
  check_int "no events" 0 (Execution.event_count o.Sim_run.execution);
  let r = Checker.check o.Sim_run.execution in
  check_bool "empty run is clean" true (Checker.is_clean r);
  check_bool "and complete" true r.Checker.complete

let test_read_only_workload () =
  let spec =
    Spec.make ~n:3 ~m:2 ~ops_per_process:30 ~write_ratio:0.0 ~seed:3 ()
  in
  let o =
    Sim_run.run (module Dsm_core.Opt_p) ~spec
      ~latency:(Latency.Constant 1.) ()
  in
  check_int "no messages" 0 o.Sim_run.messages_sent;
  let r = Checker.check o.Sim_run.execution in
  check_bool "all-bot reads are legal" true (Checker.is_clean r)

(* token protocol under a scripted schedule exercises the
   control-message delay path of Scripted_run *)
let test_token_under_scripted_schedule () =
  let o =
    Dsm_runtime.Paper_scenarios.run
      (module Dsm_core.Ws_token)
      Dsm_runtime.Paper_scenarios.figure6
  in
  let r = Checker.check o.Scripted_run.execution in
  check_bool "clean" true (Checker.is_clean r)


let test_timeline_render () =
  let o =
    Dsm_runtime.Paper_scenarios.run
      (module Dsm_core.Opt_p)
      Dsm_runtime.Paper_scenarios.figure6
  in
  let s = Dsm_runtime.Timeline.render ~width:40 o.Scripted_run.execution in
  let lines = String.split_on_char '\n' s in
  (* header + 3 lanes + legend *)
  check_int "line count" 5
    (List.length (List.filter (fun l -> l <> "") lines));
  check_bool "has the delayed-apply marker" true
    (String.contains s '*');
  check_bool "has write markers" true (String.contains s 'W');
  (* lanes all have the same width *)
  let lanes =
    List.filter
      (fun l -> String.length l > 0 && l.[0] = 'p')
      lines
  in
  check_int "three lanes" 3 (List.length lanes);
  check_bool "equal widths" true
    (match lanes with
    | first :: rest ->
        List.for_all (fun l -> String.length l = String.length first) rest
    | [] -> false)

let test_timeline_empty_execution () =
  let e = Execution.create ~n:2 ~m:1 () in
  let s = Dsm_runtime.Timeline.render ~width:20 ~legend:false e in
  check_bool "renders" true (String.length s > 0)

let test_timeline_validation () =
  let e = Execution.create ~n:1 ~m:1 () in
  Alcotest.check_raises "narrow"
    (Invalid_argument "Timeline.render: width must be >= 8") (fun () ->
      ignore (Dsm_runtime.Timeline.render ~width:4 e))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "runtime"
    [
      ( "execution",
        [
          Alcotest.test_case "queries" `Quick test_execution_queries;
          Alcotest.test_case "writes and history" `Quick
            test_execution_writes_and_history;
          Alcotest.test_case "apply latencies" `Quick
            test_execution_apply_latencies;
          Alcotest.test_case "bad process id" `Quick
            test_execution_rejects_bad_proc;
          Alcotest.test_case "out-of-order own writes" `Quick
            test_execution_out_of_order_own_writes_rejected;
        ] );
      ( "sim_run",
        [
          Alcotest.test_case "deterministic" `Quick test_sim_run_deterministic;
          Alcotest.test_case "message counts" `Quick test_sim_run_message_count;
          Alcotest.test_case "constant latency: OptP never delays" `Quick
            test_sim_run_constant_latency_no_delay_for_optp;
          Alcotest.test_case "fifo flag" `Quick test_sim_run_fifo_flag;
          Alcotest.test_case "unique write values" `Quick
            test_sim_run_write_value_unique;
        ] );
      ( "checker",
        [
          Alcotest.test_case "misordered applies" `Quick
            test_checker_detects_misorder;
          Alcotest.test_case "lost write" `Quick test_checker_detects_lost_write;
          Alcotest.test_case "skip is not lost" `Quick
            test_checker_skip_is_not_lost;
          Alcotest.test_case "bogus delay flag" `Quick
            test_checker_detects_bogus_delay_flag;
          Alcotest.test_case "delay classification" `Quick
            test_checker_delay_classes;
          Alcotest.test_case "stale read" `Quick test_checker_detects_stale_read;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "Fidge-Mattern send vectors" `Quick
            test_send_vectors_fidge_mattern;
          Alcotest.test_case "measure" `Quick test_measure_produces_metrics;
          Alcotest.test_case "paper tables shape" `Quick test_tables_nonempty;
          Alcotest.test_case "all experiments smoke" `Slow
            test_experiments_smoke;
          Alcotest.test_case "all figures smoke" `Quick test_figures_smoke;
          Alcotest.test_case "all protocols on all scenarios" `Quick
            test_all_protocols_on_scenarios;
          Alcotest.test_case "single process" `Quick
            test_single_process_run;
          Alcotest.test_case "empty workload" `Quick
            test_empty_workload_run;
          Alcotest.test_case "read-only workload" `Quick
            test_read_only_workload;
          Alcotest.test_case "token under scripted schedule" `Quick
            test_token_under_scripted_schedule;
          Alcotest.test_case "timeline render" `Quick test_timeline_render;
          Alcotest.test_case "timeline empty" `Quick
            test_timeline_empty_execution;
          Alcotest.test_case "timeline validation" `Quick
            test_timeline_validation;
        ] );
    ]
