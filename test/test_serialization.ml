(* Tests for the serialization-based causal-consistency validator
   (the original Ahamad et al. definition), cross-checked against the
   per-read legality checker. *)

module Operation = Dsm_memory.Operation
module Local_history = Dsm_memory.Local_history
module History = Dsm_memory.History
module Causal_order = Dsm_memory.Causal_order
module Legality = Dsm_memory.Legality
module Dot = Dsm_vclock.Dot

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* shared fixture: the paper's H1 (same construction as test_memory) *)
let h1 () =
  let p1 = Local_history.create ~proc:0 () in
  let wa = Local_history.add_write p1 ~var:0 ~value:0 in
  let wc = Local_history.add_write p1 ~var:0 ~value:2 in
  let p2 = Local_history.create ~proc:1 () in
  let r2 =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 0)
      ~read_from:(Some wa.Operation.wdot)
  in
  let wb = Local_history.add_write p2 ~var:1 ~value:1 in
  let p3 = Local_history.create ~proc:2 () in
  let r3 =
    Local_history.add_read p3 ~var:1 ~value:(Operation.Val 1)
      ~read_from:(Some wb.Operation.wdot)
  in
  let wd = Local_history.add_write p3 ~var:1 ~value:3 in
  (History.of_locals [ p1; p2; p3 ], wa, wc, wb, wd, r2, r3)

(* random sequentially consistent histories (same scheme as
   test_memory) *)
let random_history rand_int n_procs n_vars steps =
  let locals = Array.init n_procs (fun proc -> Local_history.create ~proc ()) in
  let last_write = Array.make n_vars None in
  for _ = 1 to steps do
    let proc = rand_int n_procs in
    let var = rand_int n_vars in
    if rand_int 2 = 0 then begin
      let value = rand_int 100 in
      let w = Local_history.add_write locals.(proc) ~var ~value in
      last_write.(var) <- Some w
    end
    else
      match last_write.(var) with
      | None ->
          ignore
            (Local_history.add_read locals.(proc) ~var ~value:Operation.Bot
               ~read_from:None)
      | Some (w : Operation.write) ->
          ignore
            (Local_history.add_read locals.(proc) ~var
               ~value:(Operation.Val w.wvalue)
               ~read_from:(Some w.wdot))
  done;
  History.of_locals (Array.to_list locals)

(* ------------------------------------------------------------------ *)
(* Serialization (the original AHNBK definition)                       *)
(* ------------------------------------------------------------------ *)

module Serialization = Dsm_memory.Serialization

let test_serialization_h1 () =
  let h, _, _, _, _, _, _ = h1 () in
  let co = Causal_order.compute h in
  (match Serialization.check co with
  | Ok witnesses ->
      check_int "one witness per process" 3 (List.length witnesses);
      List.iter
        (fun w ->
          check_bool "witness is sequence-legal" true
            (Serialization.is_legal_sequence w);
          (* 6 ops for p1/p2/p3: their own 2 ops + the other writes *)
          check_bool "witness covers H_{i+w}" true (List.length w >= 4))
        witnesses
  | Error p -> Alcotest.fail (Printf.sprintf "no witness for p%d" (p + 1)));
  check_bool "consistent both ways" true
    (Serialization.is_causally_consistent co
    = Legality.is_causally_consistent co)

let test_serialization_rejects_inconsistent () =
  (* the stale-read history from the legality tests *)
  let p1 = Local_history.create ~proc:0 () in
  let wa = Local_history.add_write p1 ~var:0 ~value:0 in
  let wc = Local_history.add_write p1 ~var:0 ~value:2 in
  let p2 = Local_history.create ~proc:1 () in
  let _ =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 2)
      ~read_from:(Some wc.Operation.wdot)
  in
  let _ =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 0)
      ~read_from:(Some wa.Operation.wdot)
  in
  let h = History.of_locals [ p1; p2 ] in
  let co = Causal_order.compute h in
  check_bool "no serialization for p2" true
    (Serialization.serialize_for co ~proc:1 = None);
  check_bool "history rejected" false
    (Serialization.is_causally_consistent co)

let test_serialization_concurrent_orders () =
  (* two processes reading two concurrent writes in opposite orders:
     causally consistent (each process gets its own serialization) *)
  let p1 = Local_history.create ~proc:0 () in
  let w1 = Local_history.add_write p1 ~var:0 ~value:1 in
  let p2 = Local_history.create ~proc:1 () in
  let w2 = Local_history.add_write p2 ~var:0 ~value:2 in
  let p3 = Local_history.create ~proc:2 () in
  let _ =
    Local_history.add_read p3 ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w1.Operation.wdot)
  in
  let _ =
    Local_history.add_read p3 ~var:0 ~value:(Operation.Val 2)
      ~read_from:(Some w2.Operation.wdot)
  in
  let p4 = Local_history.create ~proc:3 () in
  let _ =
    Local_history.add_read p4 ~var:0 ~value:(Operation.Val 2)
      ~read_from:(Some w2.Operation.wdot)
  in
  let _ =
    Local_history.add_read p4 ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w1.Operation.wdot)
  in
  let h = History.of_locals [ p1; p2; p3; p4 ] in
  let co = Causal_order.compute h in
  check_bool "causal but not sequential: witnesses exist" true
    (Serialization.is_causally_consistent co)

let test_is_legal_sequence () =
  let w1 = Operation.write ~proc:0 ~seq:1 ~var:0 ~value:1 in
  let d1 =
    match w1 with Operation.Write w -> w.Operation.wdot | _ -> assert false
  in
  let good =
    [
      w1;
      Operation.read ~proc:1 ~slot:0 ~var:0 ~value:(Operation.Val 1)
        ~read_from:(Some d1);
    ]
  in
  check_bool "good" true (Serialization.is_legal_sequence good);
  let bad = List.rev good in
  check_bool "read before its write" false
    (Serialization.is_legal_sequence bad)

(* both formulations agree on random histories, consistent or not *)
let prop_serialization_agrees_with_legality =
  qcheck_case ~count:30 "serialization = per-read legality"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rng = Dsm_sim.Rng.create seed in
      let rand_int n = Dsm_sim.Rng.int rng n in
      let h = random_history rand_int 3 2 14 in
      let co = Causal_order.compute h in
      Serialization.is_causally_consistent co
      = Legality.is_causally_consistent co)

let () =
  Alcotest.run "memory_serialization"
    [
      ( "serialization",
        [
          Alcotest.test_case "H1 witnesses" `Quick test_serialization_h1;
          Alcotest.test_case "rejects inconsistent history" `Quick
            test_serialization_rejects_inconsistent;
          Alcotest.test_case "concurrent orders diverge" `Quick
            test_serialization_concurrent_orders;
          Alcotest.test_case "is_legal_sequence" `Quick
            test_is_legal_sequence;
          prop_serialization_agrees_with_legality;
        ] );
    ]
