(* Tests for the session-guarantee auditor: causal histories satisfy
   all four guarantees; crafted anomalies are pinned to the right
   guarantee. *)

module Operation = Dsm_memory.Operation
module Local_history = Dsm_memory.Local_history
module History = Dsm_memory.History
module Causal_order = Dsm_memory.Causal_order
module SG = Dsm_memory.Session_guarantees
module Dot = Dsm_vclock.Dot

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck_case ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let co_of locals = Causal_order.compute (History.of_locals locals)

let test_h1_all_hold () =
  let p1 = Local_history.create ~proc:0 () in
  let wa = Local_history.add_write p1 ~var:0 ~value:0 in
  let _ = Local_history.add_write p1 ~var:0 ~value:2 in
  let p2 = Local_history.create ~proc:1 () in
  let _ =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 0)
      ~read_from:(Some wa.Operation.wdot)
  in
  let _ = Local_history.add_write p2 ~var:1 ~value:1 in
  let co = co_of [ p1; p2 ] in
  check_bool "all guarantees hold on (a prefix of) H1" true (SG.all_hold co)

(* RYW: p0 writes x, then reads an older (other-process) value *)
let test_ryw_violation () =
  let p0 = Local_history.create ~proc:0 () in
  let w_old = Local_history.add_write p0 ~var:0 ~value:1 in
  let p1 = Local_history.create ~proc:1 () in
  let _ =
    Local_history.add_read p1 ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w_old.Operation.wdot)
  in
  let w_new = Local_history.add_write p1 ~var:0 ~value:2 in
  let _ =
    Local_history.add_read p1 ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w_old.Operation.wdot)
  in
  ignore w_new;
  let co = co_of [ p0; p1 ] in
  check_bool "RYW broken" false (SG.holds co SG.Read_your_writes);
  (* and the anomaly is also a legality violation (causal memory
     implies RYW) *)
  check_bool "also causally inconsistent" false
    (Dsm_memory.Legality.is_causally_consistent co)

(* RYW: write then read ⊥ *)
let test_ryw_bot_violation () =
  let p0 = Local_history.create ~proc:0 () in
  let _ = Local_history.add_write p0 ~var:0 ~value:1 in
  let _ =
    Local_history.add_read p0 ~var:0 ~value:Operation.Bot ~read_from:None
  in
  let co = co_of [ p0 ] in
  check_bool "RYW broken by bot" false (SG.holds co SG.Read_your_writes)

(* MR: two reads of the same variable going causally backwards *)
let test_mr_violation () =
  let p0 = Local_history.create ~proc:0 () in
  let w1 = Local_history.add_write p0 ~var:0 ~value:1 in
  let w2 = Local_history.add_write p0 ~var:0 ~value:2 in
  let p1 = Local_history.create ~proc:1 () in
  let _ =
    Local_history.add_read p1 ~var:0 ~value:(Operation.Val 2)
      ~read_from:(Some w2.Operation.wdot)
  in
  let _ =
    Local_history.add_read p1 ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w1.Operation.wdot)
  in
  let co = co_of [ p0; p1 ] in
  check_bool "MR broken" false (SG.holds co SG.Monotonic_reads);
  (match SG.check co with
  | [ v ] -> check_bool "flagged as MR" true (v.SG.guarantee = SG.Monotonic_reads)
  | l -> check_int "exactly one violation" 1 (List.length l))

(* reading concurrent writes in some order is NOT a violation *)
let test_concurrent_reads_ok () =
  let p0 = Local_history.create ~proc:0 () in
  let w1 = Local_history.add_write p0 ~var:0 ~value:1 in
  let p1 = Local_history.create ~proc:1 () in
  let w2 = Local_history.add_write p1 ~var:0 ~value:2 in
  let p2 = Local_history.create ~proc:2 () in
  let _ =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 2)
      ~read_from:(Some w2.Operation.wdot)
  in
  let _ =
    Local_history.add_read p2 ~var:0 ~value:(Operation.Val 1)
      ~read_from:(Some w1.Operation.wdot)
  in
  let co = co_of [ p0; p1; p2 ] in
  check_bool "concurrent flip-flop allowed by MR" true
    (SG.holds co SG.Monotonic_reads)

(* protocol runs: causal protocols satisfy all four guarantees *)
let prop_protocol_runs_satisfy_guarantees =
  qcheck_case ~count:15 "every protocol run satisfies all four guarantees"
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let spec =
        Dsm_workload.Spec.make ~n:3 ~m:4 ~ops_per_process:50 ~seed ()
      in
      List.for_all
        (fun p ->
          let o =
            Dsm_runtime.Sim_run.run p ~spec
              ~latency:(Dsm_sim.Latency.Lognormal { mu = 2.0; sigma = 1.0 })
              ~seed:(seed + 1) ()
          in
          SG.all_hold (Causal_order.compute o.Dsm_runtime.Sim_run.history))
        [ (module Dsm_core.Opt_p : Dsm_core.Protocol.S);
          (module Dsm_core.Anbkh);
          (module Dsm_core.Ws_receiver);
          (module Dsm_core.Opt_p_ws);
          (module Dsm_core.Ws_token) ])

let () =
  Alcotest.run "session_guarantees"
    [
      ( "session_guarantees",
        [
          Alcotest.test_case "H1 prefix: all hold" `Quick test_h1_all_hold;
          Alcotest.test_case "RYW violation (stale)" `Quick
            test_ryw_violation;
          Alcotest.test_case "RYW violation (bot)" `Quick
            test_ryw_bot_violation;
          Alcotest.test_case "MR violation" `Quick test_mr_violation;
          Alcotest.test_case "concurrent reads allowed" `Quick
            test_concurrent_reads_ok;
          prop_protocol_runs_satisfy_guarantees;
        ] );
    ]
