(* Session tier: client sessions multiplexed onto replicas with
   crash-tolerant migration.

   Layers, bottom-up:
   - the pure pieces in isolation: op-id value encoding (disjoint from
     the replica workload's value space), placement policies, backoff;
   - a clean campaign with sessions: every op served, no migrations
     under sticky placement on a healthy cluster, zero session-guarantee
     violations, zero duplicate writes, replica audit untouched
     (Theorem 4 accounting included);
   - kill-home: the sticky session's home crashes mid-run and the
     session migrates with its vector — clean;
   - the canary: the same failover with handoff disabled (the session
     vector dropped on retarget) must be caught by the re-attributed
     checker as an RYW violation, across a seed sweep;
   - a qcheck property: random faults/placements over runs whose
     replica-side checker is clean never produce session-guarantee
     violations (handoff on), and never a duplicate applied write. *)

module Fault_plan = Dsm_sim.Fault_plan
module Sim_time = Dsm_sim.Sim_time
module Latency = Dsm_sim.Latency
module Rng = Dsm_sim.Rng
module Spec = Dsm_workload.Spec
module Fd = Dsm_runtime.Failure_detector
module Churn_campaign = Dsm_runtime.Churn_campaign
module Checker = Dsm_runtime.Checker
module ST = Dsm_runtime.Session_tier
module SG = Dsm_memory.Session_guarantees

(* ---------------------------------------------------------------- *)
(* pure pieces                                                       *)
(* ---------------------------------------------------------------- *)

let test_op_value () =
  List.iter
    (fun (sid, op) ->
      match ST.decode_value (ST.op_value ~sid ~op) with
      | Some (sid', op') ->
          Alcotest.(check (pair int int))
            (Printf.sprintf "roundtrip sid=%d op=%d" sid op)
            (sid, op) (sid', op')
      | None -> Alcotest.fail "session-coded value did not decode")
    [ (0, 1); (7, 20); (41, 99_999) ];
  (* replica workload values must never decode as session ops *)
  for proc = 0 to 9 do
    for seq = 1 to 50 do
      Alcotest.(check (option (pair int int)))
        "replica value space is disjoint" None
        (ST.decode_value (Dsm_runtime.Sim_run.write_value ~proc ~seq))
    done
  done;
  Alcotest.(check (option (pair int int))) "plain small ints" None
    (ST.decode_value 42)

let test_choose_home () =
  let rng = Rng.create 1 in
  (* sticky: keeps the current home while it stays usable *)
  Alcotest.(check (option int))
    "sticky keeps current" (Some 2)
    (ST.choose_home ST.Sticky ~sid:0 ~universe:4 ~rng ~active:[ 0; 1; 2; 3 ]
       ~current:(Some 2));
  (* sticky failover: cyclically next active slot after the anchor *)
  Alcotest.(check (option int))
    "sticky fails over cyclically" (Some 0)
    (ST.choose_home ST.Sticky ~sid:0 ~universe:4 ~rng ~active:[ 0; 1 ]
       ~current:(Some 3));
  (* sticky initial anchor: sid mod universe *)
  Alcotest.(check (option int))
    "sticky anchors at sid mod n" (Some 1)
    (ST.choose_home ST.Sticky ~sid:5 ~universe:4 ~rng ~active:[ 0; 1; 2; 3 ]
       ~current:None);
  (* nearest: fails over and back — current is ignored *)
  Alcotest.(check (option int))
    "nearest fails back to preference" (Some 1)
    (ST.choose_home ST.Nearest ~sid:1 ~universe:4 ~rng ~active:[ 0; 1; 2; 3 ]
       ~current:(Some 3));
  Alcotest.(check (option int))
    "nearest takes ring-next when preferred is down" (Some 2)
    (ST.choose_home ST.Nearest ~sid:1 ~universe:4 ~rng ~active:[ 0; 2; 3 ]
       ~current:None);
  (* random: always lands on an active slot *)
  for _ = 1 to 100 do
    match
      ST.choose_home ST.Random ~sid:0 ~universe:6 ~rng ~active:[ 1; 4 ]
        ~current:None
    with
    | Some h -> Alcotest.(check bool) "random picks active" true (h = 1 || h = 4)
    | None -> Alcotest.fail "random returned None with active slots"
  done;
  List.iter
    (fun p ->
      Alcotest.(check (option int))
        "empty active is None" None
        (ST.choose_home p ~sid:0 ~universe:4 ~rng ~active:[] ~current:(Some 1)))
    [ ST.Sticky; ST.Random; ST.Nearest ]

let test_backoff () =
  let cfg = ST.default_config ~count:1 in
  let rng = Rng.create 3 in
  let prev = ref 0. in
  for attempt = 1 to 20 do
    let d = ST.backoff_delay cfg ~rng ~attempt in
    Alcotest.(check bool) "positive" true (d > 0.);
    Alcotest.(check bool) "capped (with jitter headroom)" true
      (d <= cfg.ST.backoff_cap *. 1.5);
    prev := d
  done;
  ignore !prev

(* ---------------------------------------------------------------- *)
(* campaigns                                                         *)
(* ---------------------------------------------------------------- *)

let mk_spec ~universe ~seed =
  Spec.make ~n:universe ~m:3 ~ops_per_process:20 ~write_ratio:0.5
    ~think:(Latency.Exponential { mean = 10. })
    ~seed ()

let exp_latency = Latency.Exponential { mean = 8. }

let run_campaign ?detector ?(mixed = false) ?(plan = Fault_plan.make [])
    ?(seed = 11) ~sessions () =
  Churn_campaign.run
    (module Dsm_core.Opt_p)
    ~spec:(mk_spec ~universe:5 ~seed)
    ~latency:exp_latency ~plan ~initial:5 ?detector ~mixed ~sessions ~seed ()

let get_sessions o =
  match o.Churn_campaign.sessions with
  | Some r -> r
  | None -> Alcotest.fail "campaign dropped the session report"

let reject_pp = Alcotest.testable SG.pp_violation (fun a b -> a = b)

let test_clean_run () =
  let sessions =
    { (ST.default_config ~count:6) with ST.ops_per_session = 15 }
  in
  let o = run_campaign ~sessions () in
  let r = get_sessions o in
  Alcotest.(check bool) "replica audit clean" true o.Churn_campaign.clean;
  Alcotest.(check int) "Theorem 4 intact with sessions active" 0
    o.Churn_campaign.report.Checker.unnecessary_delays;
  Alcotest.(check int) "every op served" (6 * 15) r.ST.ops_done;
  Alcotest.(check (list reject_pp)) "no violations" [] r.ST.violations;
  Alcotest.(check int) "no duplicate writes" 0 r.ST.duplicate_writes;
  Alcotest.(check int) "nothing degraded" 0 (List.length r.ST.degraded);
  Alcotest.(check bool) "report is clean" true (ST.clean r);
  (* a healthy cluster under sticky placement never migrates *)
  Alcotest.(check int) "no migrations" 0 (List.length r.ST.migrations);
  Alcotest.(check bool) "write latencies recorded" true
    (List.length r.ST.write_latencies > 0)

let kill_home_plan =
  (* p1 (slot 0) hosts the sticky sessions anchored there; kill it *)
  Fault_plan.make [ Fault_plan.Crash { proc = 0; at = Sim_time.of_float 60. } ]

let test_kill_home_migrates () =
  let sessions =
    {
      (ST.default_config ~count:4) with
      ST.ops_per_session = 15;
      think_mean = 8.;
    }
  in
  let detector = Fd.config ~threshold:1.2 ~heartbeat_every:10. () in
  let o =
    run_campaign ~detector ~mixed:true ~plan:kill_home_plan ~sessions ()
  in
  let r = get_sessions o in
  Alcotest.(check bool) "replica audit clean" true o.Churn_campaign.clean;
  Alcotest.(check (list reject_pp)) "no session violations" []
    r.ST.violations;
  Alcotest.(check int) "no duplicate writes" 0 r.ST.duplicate_writes;
  Alcotest.(check bool) "sessions migrated off the corpse" true
    (List.length r.ST.migrations >= 1);
  Alcotest.(check bool) "vector handed off on every edge" true
    (List.for_all (fun e -> e.ST.mcarried) r.ST.migrations);
  (* every op resolved: served, deduped, or surfaced as degraded *)
  List.iter
    (fun sp ->
      Alcotest.(check bool) "op resolved" true (sp.ST.ooutcome <> None))
    r.ST.spans

let canary_plan =
  (* partition slot 0 away: its session writes commit there but cannot
     propagate, the detector ejects it, dropped-vector migrants then
     read stale state at their new home — the anomaly the handoff
     exists to prevent.  Healed late so the replica audit still
     converges. *)
  Fault_plan.make
    [
      Fault_plan.Cut
        { groups = [ [ 0 ]; [ 1; 2; 3; 4 ] ]; at = Sim_time.of_float 40. };
      Fault_plan.Heal { at = Sim_time.of_float 400. };
    ]

let canary_config ~seed =
  {
    (ST.default_config ~count:16) with
    ST.ops_per_session = 24;
    think_mean = 4.;
    write_ratio = 0.5;
    handoff = false;
    seed;
  }

let canary_detector () = Fd.config ~threshold:1.2 ~heartbeat_every:8. ()

let test_canary_dropped_handoff () =
  (* handoff disabled: the session vector is zeroed on every retarget.
     The re-attributed checker must catch the anomaly on every seed.
     Most seeds surface it as a stale read (RYW); on the rest the
     session overwrites the trapped variable before re-reading it, so
     the same dropped vector shows up as a monotonic-writes /
     writes-follow-reads miss instead — still a catch. *)
  let caught = ref 0 and caught_ryw = ref 0 in
  let seeds = List.init 16 (fun i -> 100 + (7 * i)) in
  List.iter
    (fun seed ->
      let sessions = canary_config ~seed in
      let detector = canary_detector () in
      let o =
        run_campaign ~detector ~mixed:true ~plan:canary_plan ~seed ~sessions
          ()
      in
      let r = get_sessions o in
      let ryw =
        List.filter
          (fun v -> v.SG.guarantee = SG.Read_your_writes)
          r.ST.violations
      in
      if r.ST.violations <> [] then incr caught;
      if ryw <> [] then incr caught_ryw;
      (* the violating pair is carried structurally *)
      List.iter
        (fun v ->
          Alcotest.(check bool) "anchor dot present" true
            (Dsm_vclock.Dot.seq v.SG.anchor > 0))
        ryw)
    seeds;
  Alcotest.(check int)
    (Printf.sprintf "canary caught %d/16 (%d with RYW)" !caught !caught_ryw)
    16 !caught;
  Alcotest.(check bool)
    (Printf.sprintf "RYW named on %d/16 (want >= 12)" !caught_ryw)
    true
    (!caught_ryw >= 12)

let test_canary_pinned_ryw () =
  (* pinned regression: on this fixed seed the dropped handoff is
     caught specifically as RYW — a read served by a home that never
     applied the session's own write — and turning the handoff back on
     makes the very same schedule clean. *)
  let seed = 100 in
  let detector = canary_detector () in
  let run ~handoff =
    let sessions = { (canary_config ~seed) with ST.handoff } in
    let o =
      run_campaign ~detector ~mixed:true ~plan:canary_plan ~seed ~sessions ()
    in
    get_sessions o
  in
  let dropped = run ~handoff:false in
  let ryw =
    List.filter
      (fun v -> v.SG.guarantee = SG.Read_your_writes)
      dropped.ST.violations
  in
  Alcotest.(check bool) "dropped handoff caught as RYW" true (ryw <> []);
  List.iter
    (fun v ->
      Alcotest.(check bool) "RYW anchors the session's own write" true
        (Dsm_vclock.Dot.seq v.SG.anchor > 0))
    ryw;
  let carried = run ~handoff:true in
  Alcotest.(check int) "same schedule with handoff: clean" 0
    (List.length carried.ST.violations);
  Alcotest.(check int) "same schedule with handoff: no duplicates" 0
    carried.ST.duplicate_writes

(* ---------------------------------------------------------------- *)
(* property: clean replicas => clean sessions (handoff on)           *)
(* ---------------------------------------------------------------- *)

let prop_clean_implies_session_clean =
  QCheck.Test.make ~count:12
    ~name:"migration schedules over clean runs preserve session guarantees"
    QCheck.(
      triple (int_range 0 2) (int_range 0 2) (int_range 1 1000))
    (fun (placement_ix, crashes, seed) ->
      let placement =
        List.nth [ ST.Sticky; ST.Random; ST.Nearest ] placement_ix
      in
      let plan =
        (* crash up to two distinct low slots mid-run; detector-driven
           view changes migrate their sessions *)
        Fault_plan.make
          (List.init crashes (fun i ->
               Fault_plan.Crash
                 { proc = i; at = Sim_time.of_float (50. +. (40. *. float_of_int i)) }))
      in
      let sessions =
        {
          (ST.default_config ~count:5) with
          ST.ops_per_session = 12;
          placement;
          think_mean = 8.;
          seed;
        }
      in
      let detector = Fd.config ~threshold:1.2 ~heartbeat_every:10. () in
      let o =
        run_campaign ~detector ~mixed:true ~plan ~seed:(seed + 1) ~sessions ()
      in
      let r = get_sessions o in
      (* the property: a clean replica-side run never shows session
         violations, and writes are at-most-once unconditionally *)
      r.ST.duplicate_writes = 0
      && ((not o.Churn_campaign.clean) || r.ST.violations = []))

let () =
  Alcotest.run "session_tier"
    [
      ( "pure",
        [
          Alcotest.test_case "op-id value encoding" `Quick test_op_value;
          Alcotest.test_case "placement policies" `Quick test_choose_home;
          Alcotest.test_case "capped backoff" `Quick test_backoff;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "clean run" `Quick test_clean_run;
          Alcotest.test_case "kill-home migrates" `Quick
            test_kill_home_migrates;
          Alcotest.test_case "dropped-handoff canary 16/16" `Slow
            test_canary_dropped_handoff;
          Alcotest.test_case "pinned RYW regression" `Quick
            test_canary_pinned_ryw;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest prop_clean_implies_session_clean;
        ] );
    ]
