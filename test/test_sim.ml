(* Unit and property tests for the discrete-event simulator substrate:
   Rng, Sim_time, Pairing_heap, Event_queue, Engine, Latency, Mailbox,
   Network, Trace. *)

module Rng = Dsm_sim.Rng
module Sim_time = Dsm_sim.Sim_time
module Pairing_heap = Dsm_sim.Pairing_heap
module Event_queue = Dsm_sim.Event_queue
module Engine = Dsm_sim.Engine
module Latency = Dsm_sim.Latency
module Mailbox = Dsm_sim.Mailbox
module Network = Dsm_sim.Network
module Trace = Dsm_sim.Trace

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next_int64 a = Rng.next_int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.next_int64 a = Rng.next_int64 b then incr same
  done;
  check_int "different seeds, different streams" 0 !same

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let c = Rng.next_int64 child and p = Rng.next_int64 parent in
  check_bool "split decorrelates" true (c <> p)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    check_bool "in range" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_covers_range () =
  let rng = Rng.create 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  check_bool "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_float_unit () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    check_bool "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_mean_roughly_half () =
  let rng = Rng.create 13 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean near 0.5" true (abs_float (mean -. 0.5) < 0.02)

let test_rng_exponential_positive_and_mean () =
  let rng = Rng.create 17 in
  let n = 20_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    let x = Rng.exponential rng 10. in
    assert (x >= 0.);
    acc := !acc +. x
  done;
  let mean = !acc /. float_of_int n in
  check_bool "mean near 10" true (abs_float (mean -. 10.) < 0.5)

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 19 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Rng.bernoulli rng 0.);
    check_bool "p=1 always" true (Rng.bernoulli rng 1.)
  done

let test_rng_pareto_support () =
  let rng = Rng.create 23 in
  for _ = 1 to 1000 do
    check_bool "at least scale" true
      (Rng.pareto rng ~scale:2. ~shape:1.5 >= 2.)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 29 in
  let a = Array.init 10 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int))
    "still a permutation"
    (Array.init 10 Fun.id) sorted

let test_rng_choice () =
  let rng = Rng.create 31 in
  let a = [| "x" |] in
  Alcotest.(check string) "singleton" "x" (Rng.choice rng a);
  Alcotest.check_raises "empty"
    (Invalid_argument "Rng.choice: empty array") (fun () ->
      ignore (Rng.choice rng [||]))

(* ------------------------------------------------------------------ *)
(* Sim_time                                                            *)
(* ------------------------------------------------------------------ *)

let test_time_basics () =
  let t = Sim_time.of_float 5. in
  check_bool "roundtrip" true (Sim_time.to_float t = 5.);
  let t2 = Sim_time.add t 2.5 in
  check_bool "add" true (Sim_time.to_float t2 = 7.5);
  check_bool "diff" true (Sim_time.diff t2 t = 2.5);
  check_bool "compare" true Sim_time.(t < t2);
  check_bool "max" true (Sim_time.equal (Sim_time.max t t2) t2)

let test_time_validation () =
  Alcotest.check_raises "negative"
    (Invalid_argument
       "Sim_time.of_float: time must be finite and non-negative")
    (fun () -> ignore (Sim_time.of_float (-1.)));
  Alcotest.check_raises "nan"
    (Invalid_argument
       "Sim_time.of_float: time must be finite and non-negative")
    (fun () -> ignore (Sim_time.of_float Float.nan));
  Alcotest.check_raises "negative duration"
    (Invalid_argument
       "Sim_time.add: duration must be finite and non-negative")
    (fun () -> ignore (Sim_time.add Sim_time.zero (-0.1)))

(* ------------------------------------------------------------------ *)
(* Pairing_heap                                                        *)
(* ------------------------------------------------------------------ *)

module Int_heap = Pairing_heap.Make (Int)

let test_heap_basics () =
  let h = Int_heap.of_list [ 5; 3; 8; 1; 9; 1 ] in
  check_int "size" 6 (Int_heap.size h);
  check_bool "min" true (Int_heap.find_min h = Some 1);
  Alcotest.(check (list int))
    "sorted drain" [ 1; 1; 3; 5; 8; 9 ]
    (Int_heap.to_sorted_list h);
  check_int "persistent" 6 (Int_heap.size h)

let test_heap_empty () =
  check_bool "empty min" true (Int_heap.find_min Int_heap.empty = None);
  check_bool "empty delete" true
    (Int_heap.delete_min Int_heap.empty = None);
  check_bool "is_empty" true (Int_heap.is_empty Int_heap.empty)

let test_heap_merge () =
  let a = Int_heap.of_list [ 4; 2 ] and b = Int_heap.of_list [ 3; 1 ] in
  let m = Int_heap.merge a b in
  Alcotest.(check (list int))
    "merged" [ 1; 2; 3; 4 ] (Int_heap.to_sorted_list m)

let test_heap_fold_unordered () =
  let h = Int_heap.of_list [ 1; 2; 3 ] in
  check_int "sum via fold" 6 (Int_heap.fold_unordered ( + ) 0 h)

let prop_heap_sorts =
  qcheck_case "heap drains sorted"
    QCheck2.Gen.(list_size (int_range 0 200) (int_bound 1000))
    (fun l ->
      Int_heap.to_sorted_list (Int_heap.of_list l)
      = List.sort Int.compare l)

let prop_heap_merge_is_union =
  qcheck_case "merge drains the multiset union"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 50) (int_bound 100))
        (list_size (int_range 0 50) (int_bound 100)))
    (fun (a, b) ->
      Int_heap.to_sorted_list
        (Int_heap.merge (Int_heap.of_list a) (Int_heap.of_list b))
      = List.sort Int.compare (a @ b))

(* ------------------------------------------------------------------ *)
(* Event_queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_queue_time_order () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~at:(Sim_time.of_float 3.) "c";
  Event_queue.schedule q ~at:(Sim_time.of_float 1.) "a";
  Event_queue.schedule q ~at:(Sim_time.of_float 2.) "b";
  let pop () = Option.map snd (Event_queue.pop q) in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  let p4 = pop () in
  Alcotest.(check (list (option string)))
    "time order"
    [ Some "a"; Some "b"; Some "c"; None ]
    [ p1; p2; p3; p4 ]

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  let t = Sim_time.of_float 1. in
  List.iter (fun s -> Event_queue.schedule q ~at:t s) [ "1"; "2"; "3" ];
  let pop () = Option.get (Event_queue.pop q) |> snd in
  let p1 = pop () in
  let p2 = pop () in
  let p3 = pop () in
  Alcotest.(check (list string))
    "schedule order on equal times" [ "1"; "2"; "3" ] [ p1; p2; p3 ]

let test_queue_counters () =
  let q = Event_queue.create () in
  Event_queue.schedule q ~at:Sim_time.zero ();
  Event_queue.schedule q ~at:Sim_time.zero ();
  check_int "size" 2 (Event_queue.size q);
  Event_queue.clear q;
  check_bool "cleared" true (Event_queue.is_empty q);
  check_int "lifetime counter survives clear" 2
    (Event_queue.scheduled_total q)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e (Sim_time.of_float 2.) (fun () -> log := 2 :: !log);
  Engine.schedule_at e (Sim_time.of_float 1.) (fun () -> log := 1 :: !log);
  check_bool "drained" true (Engine.run e = Engine.Drained);
  Alcotest.(check (list int)) "execution order" [ 1; 2 ] (List.rev !log);
  check_int "steps" 2 (Engine.steps_executed e)

let test_engine_clock_advances () =
  let e = Engine.create () in
  Engine.schedule_at e (Sim_time.of_float 5.) (fun () ->
      check_bool "now = event time" true
        (Sim_time.equal (Engine.now e) (Sim_time.of_float 5.)));
  ignore (Engine.run e)

let test_engine_cascading () =
  let e = Engine.create () in
  let hits = ref 0 in
  let rec chain n () =
    incr hits;
    if n > 0 then Engine.schedule_after e 1. (chain (n - 1))
  in
  Engine.schedule_now e (chain 9);
  ignore (Engine.run e);
  check_int "10 chained events" 10 !hits

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule_at e (Sim_time.of_float 10.) (fun () ->
      Alcotest.check_raises "past"
        (Invalid_argument
           "Engine.schedule_at: cannot schedule in the virtual past")
        (fun () -> Engine.schedule_at e (Sim_time.of_float 1.) ignore));
  ignore (Engine.run e)

let test_engine_step_limit () =
  let e = Engine.create () in
  let rec forever () = Engine.schedule_after e 1. forever in
  Engine.schedule_now e forever;
  check_bool "hits limit" true
    (Engine.run ~max_steps:50 e = Engine.Hit_step_limit);
  check_int "stopped at limit" 50 (Engine.steps_executed e)

let test_engine_time_limit () =
  let e = Engine.create () in
  for i = 1 to 10 do
    Engine.schedule_at e (Sim_time.of_float (float_of_int i)) ignore
  done;
  check_bool "hits horizon" true
    (Engine.run ~until:(Sim_time.of_float 5.) e = Engine.Hit_time_limit);
  check_int "executed only up to horizon" 5 (Engine.steps_executed e);
  check_int "rest still pending" 5 (Engine.pending e)

(* ------------------------------------------------------------------ *)
(* Latency                                                             *)
(* ------------------------------------------------------------------ *)

let test_latency_validation () =
  check_bool "good" true (Latency.validate (Latency.Constant 1.) = Ok ());
  check_bool "bad constant" true
    (Result.is_error (Latency.validate (Latency.Constant (-1.))));
  check_bool "bad uniform" true
    (Result.is_error
       (Latency.validate (Latency.Uniform { lo = 2.; hi = 1. })));
  check_bool "bad bimodal p" true
    (Result.is_error
       (Latency.validate
          (Latency.Bimodal
             {
               fast = Latency.Constant 1.;
               slow = Latency.Constant 2.;
               p_slow = 1.5;
             })));
  check_bool "nested validation" true
    (Result.is_error
       (Latency.validate
          (Latency.Shifted { base = 1.; jitter = Latency.Constant (-1.) })))

let test_latency_samples_nonnegative () =
  let rng = Rng.create 37 in
  let dists =
    [
      Latency.Constant 3.;
      Latency.Uniform { lo = 1.; hi = 2. };
      Latency.Exponential { mean = 5. };
      Latency.Lognormal { mu = 0.; sigma = 1. };
      Latency.Pareto { scale = 1.; shape = 2. };
      Latency.Shifted
        { base = 10.; jitter = Latency.Exponential { mean = 1. } };
      Latency.Bimodal
        {
          fast = Latency.Constant 1.;
          slow = Latency.Constant 100.;
          p_slow = 0.1;
        };
    ]
  in
  List.iter
    (fun d ->
      for _ = 1 to 200 do
        let x = Latency.sample d rng in
        check_bool "non-negative finite" true (x >= 0. && Float.is_finite x)
      done)
    dists

let test_latency_means () =
  check_bool "uniform mean" true
    (Latency.mean (Latency.Uniform { lo = 0.; hi = 2. }) = 1.);
  check_bool "shifted mean" true
    (Latency.mean
       (Latency.Shifted { base = 5.; jitter = Latency.Constant 1. })
    = 6.);
  check_bool "pareto heavy tail" true
    (Latency.mean (Latency.Pareto { scale = 1.; shape = 0.9 }) = infinity)

let test_latency_empirical_mean () =
  let rng = Rng.create 41 in
  let d = Latency.Lognormal { mu = log 10. -. 0.5; sigma = 1.0 } in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Latency.sample d rng
  done;
  let empirical = !acc /. float_of_int n in
  check_bool "lognormal mean ~ analytic" true
    (abs_float (empirical -. Latency.mean d) /. Latency.mean d < 0.1)

(* ------------------------------------------------------------------ *)
(* Mailbox                                                             *)
(* ------------------------------------------------------------------ *)

let test_mailbox_order () =
  let mb = Mailbox.create () in
  List.iter (Mailbox.add mb) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3 ] (Mailbox.to_list mb)

let test_mailbox_take_first () =
  let mb = Mailbox.create () in
  List.iter (Mailbox.add mb) [ 1; 2; 3; 4 ];
  check_bool "takes oldest match" true
    (Mailbox.take_first mb ~f:(fun x -> x mod 2 = 0) = Some 2);
  Alcotest.(check (list int)) "order kept" [ 1; 3; 4 ] (Mailbox.to_list mb);
  check_bool "no match" true
    (Mailbox.take_first mb ~f:(fun x -> x > 9) = None)

let test_mailbox_remove_all () =
  let mb = Mailbox.create () in
  List.iter (Mailbox.add mb) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int))
    "removed evens" [ 2; 4 ]
    (Mailbox.remove_all mb ~f:(fun x -> x mod 2 = 0));
  Alcotest.(check (list int)) "left odds" [ 1; 3; 5 ] (Mailbox.to_list mb)

let test_mailbox_drain_fixpoint_effectful () =
  (* the predicate mutates state that enables further elements — the
     exact usage pattern of protocol buffers *)
  let mb = Mailbox.create () in
  List.iter (Mailbox.add mb) [ 3; 2; 1 ];
  let next = ref 1 in
  let taken =
    Mailbox.drain_fixpoint mb ~f:(fun x ->
        if x = !next then begin
          incr next;
          true
        end
        else false)
  in
  Alcotest.(check (list int)) "chain drained in order" [ 1; 2; 3 ] taken;
  check_bool "empty after" true (Mailbox.is_empty mb)

let test_mailbox_stats () =
  let mb = Mailbox.create () in
  List.iter (Mailbox.add mb) [ 1; 2; 3 ];
  ignore (Mailbox.take_first mb ~f:(fun _ -> true));
  Mailbox.add mb 4;
  check_int "high watermark" 3 (Mailbox.high_watermark mb);
  check_int "total" 4 (Mailbox.total_buffered mb);
  Mailbox.clear mb;
  check_bool "cleared" true (Mailbox.is_empty mb);
  check_int "total survives clear" 4 (Mailbox.total_buffered mb)

(* ------------------------------------------------------------------ *)
(* Network                                                             *)
(* ------------------------------------------------------------------ *)

let make_net ?(fifo = false) ?(latency = Latency.Constant 1.) n =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let net =
    Network.create ~engine ~rng ~n
      ~latency:(fun ~src:_ ~dst:_ -> latency)
      ~fifo ()
  in
  (engine, net)

let test_network_delivers () =
  let engine, net = make_net 2 in
  let got = ref [] in
  Network.set_handler net 1 (fun ~src ~at:_ msg -> got := (src, msg) :: !got);
  Network.send net ~src:0 ~dst:1 "hello";
  ignore (Engine.run engine);
  Alcotest.(check (list (pair int string)))
    "one delivery" [ (0, "hello") ] !got;
  check_int "sent" 1 (Network.messages_sent net);
  check_int "delivered" 1 (Network.messages_delivered net);
  check_int "in flight" 0 (Network.in_flight net)

let test_network_broadcast () =
  let engine, net = make_net 4 in
  let hits = Array.make 4 0 in
  for i = 0 to 3 do
    Network.set_handler net i (fun ~src:_ ~at:_ () ->
        hits.(i) <- hits.(i) + 1)
  done;
  Network.broadcast net ~src:2 ();
  ignore (Engine.run engine);
  Alcotest.(check (array int))
    "everyone but the source" [| 1; 1; 0; 1 |] hits

let test_network_rejects_self_send () =
  let _, net = make_net 2 in
  Alcotest.check_raises "self send"
    (Invalid_argument
       "Network.send: self-sends are not modelled (apply locally)")
    (fun () -> Network.send net ~src:0 ~dst:0 ())

let test_network_reordering_without_fifo () =
  let engine, net =
    make_net ~latency:(Latency.Uniform { lo = 0.; hi = 100. }) 2
  in
  let arrivals = ref [] in
  Network.set_handler net 1 (fun ~src:_ ~at:_ k -> arrivals := k :: !arrivals);
  for k = 1 to 50 do
    Network.send net ~src:0 ~dst:1 k
  done;
  ignore (Engine.run engine);
  let order = List.rev !arrivals in
  check_bool "some reordering happened" true
    (order <> List.init 50 (fun i -> i + 1));
  check_int "all delivered" 50 (List.length order)

let test_network_fifo_orders_channel () =
  let engine, net =
    make_net ~fifo:true ~latency:(Latency.Uniform { lo = 0.; hi = 100. }) 2
  in
  let arrivals = ref [] in
  Network.set_handler net 1 (fun ~src:_ ~at:_ k -> arrivals := k :: !arrivals);
  for k = 1 to 50 do
    Network.send net ~src:0 ~dst:1 k
  done;
  ignore (Engine.run engine);
  Alcotest.(check (list int))
    "fifo preserves send order"
    (List.init 50 (fun i -> i + 1))
    (List.rev !arrivals)

let test_network_no_handler_fails () =
  let engine, net = make_net 2 in
  Network.send net ~src:0 ~dst:1 ();
  match Engine.run engine with
  | exception Network.No_handler { dst = 1; src = 0; at = _ } -> ()
  | exception e ->
      Alcotest.failf "expected No_handler, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "missing handler must fail loudly"


(* ------------------------------------------------------------------ *)
(* Faulty network + reliable channel                                   *)
(* ------------------------------------------------------------------ *)

let test_network_faults_validation () =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  Alcotest.check_raises "bad drop prob"
    (Invalid_argument "Network.create: drop probability must be in [0,1]")
    (fun () ->
      ignore
        (Network.create ~engine ~rng ~n:2
           ~latency:(fun ~src:_ ~dst:_ -> Latency.Constant 1.)
           ~faults:{ Network.drop = 1.5; duplicate = 0.; corrupt = 0. }
           ()
          : unit Network.t))

let test_network_drops_messages () =
  let engine = Engine.create () in
  let rng = Rng.create 7 in
  let net =
    Network.create ~engine ~rng ~n:2
      ~latency:(fun ~src:_ ~dst:_ -> Latency.Constant 1.)
      ~faults:{ Network.drop = 0.5; duplicate = 0.; corrupt = 0. }
      ()
  in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ ~at:_ () -> incr got);
  for _ = 1 to 200 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  ignore (Engine.run engine);
  check_int "conservation" 200
    (Network.messages_delivered net + Network.messages_dropped net);
  check_bool "plenty dropped" true (Network.messages_dropped net > 50);
  check_bool "plenty delivered" true (!got > 50);
  check_int "handler saw each delivery" (Network.messages_delivered net) !got

let test_network_duplicates_messages () =
  let engine = Engine.create () in
  let rng = Rng.create 11 in
  let net =
    Network.create ~engine ~rng ~n:2
      ~latency:(fun ~src:_ ~dst:_ -> Latency.Constant 1.)
      ~faults:{ Network.drop = 0.; duplicate = 0.5; corrupt = 0. }
      ()
  in
  let got = ref 0 in
  Network.set_handler net 1 (fun ~src:_ ~at:_ () -> incr got);
  for _ = 1 to 200 do
    Network.send net ~src:0 ~dst:1 ()
  done;
  ignore (Engine.run engine);
  check_bool "duplicates happened" true (Network.messages_duplicated net > 50);
  check_int "deliveries = sends + duplicates"
    (200 + Network.messages_duplicated net)
    !got

let test_reliable_channel_exactly_once_lossless () =
  let engine = Engine.create () in
  let rng = Rng.create 3 in
  let net =
    Network.create ~engine ~rng ~n:3
      ~latency:(fun ~src:_ ~dst:_ -> Latency.Constant 1.)
      ()
  in
  let ch = Dsm_sim.Reliable_channel.create ~engine ~network:net () in
  let got = Array.make 3 [] in
  for i = 0 to 2 do
    Dsm_sim.Reliable_channel.set_handler ch i (fun ~src:_ ~at:_ k ->
        got.(i) <- k :: got.(i))
  done;
  for k = 1 to 5 do
    Dsm_sim.Reliable_channel.broadcast ch ~src:0 k
  done;
  ignore (Engine.run engine);
  Alcotest.(check (list int)) "p1 got each exactly once" [ 1; 2; 3; 4; 5 ]
    (List.sort compare got.(1));
  Alcotest.(check (list int)) "p2 got each exactly once" [ 1; 2; 3; 4; 5 ]
    (List.sort compare got.(2));
  check_int "nothing left unacked" 0 (Dsm_sim.Reliable_channel.unacked ch)

let test_reliable_channel_exactly_once_under_faults () =
  let engine = Engine.create () in
  let rng = Rng.create 13 in
  let net =
    Network.create ~engine ~rng ~n:2
      ~latency:(fun ~src:_ ~dst:_ -> Latency.Exponential { mean = 5. })
      ~faults:{ Network.drop = 0.4; duplicate = 0.3; corrupt = 0. }
      ()
  in
  let ch =
    Dsm_sim.Reliable_channel.create ~engine ~network:net
      ~retransmit_after:25. ()
  in
  let got = ref [] in
  Dsm_sim.Reliable_channel.set_handler ch 1 (fun ~src:_ ~at:_ k ->
      got := k :: !got);
  Dsm_sim.Reliable_channel.set_handler ch 0 (fun ~src:_ ~at:_ _ -> ());
  let n_msgs = 100 in
  for k = 1 to n_msgs do
    Dsm_sim.Reliable_channel.send ch ~src:0 ~dst:1 k
  done;
  ignore (Engine.run engine);
  Alcotest.(check (list int))
    "every payload delivered exactly once despite 40% drop / 30% dup"
    (List.init n_msgs (fun i -> i + 1))
    (List.sort compare !got);
  check_bool "recovery actually happened" true
    (Dsm_sim.Reliable_channel.retransmissions ch > 0);
  check_bool "dedup actually happened" true
    (Dsm_sim.Reliable_channel.duplicates_discarded ch > 0);
  check_int "all acked" 0 (Dsm_sim.Reliable_channel.unacked ch)

let test_reliable_channel_validation () =
  let engine = Engine.create () in
  let rng = Rng.create 1 in
  let net =
    Network.create ~engine ~rng ~n:2
      ~latency:(fun ~src:_ ~dst:_ -> Latency.Constant 1.)
      ()
  in
  Alcotest.check_raises "timeout"
    (Invalid_argument
       "Reliable_channel.create: retransmit_after must be positive")
    (fun () ->
      ignore
        (Dsm_sim.Reliable_channel.create ~engine ~network:net
           ~retransmit_after:0. ()))

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_append_get () =
  let t = Trace.create ~initial_capacity:2 () in
  for i = 0 to 9 do
    Trace.record t i
  done;
  check_int "length" 10 (Trace.length t);
  check_int "get" 7 (Trace.get t 7);
  Alcotest.(check (list int))
    "to_list" (List.init 10 Fun.id) (Trace.to_list t)

let test_trace_bounds () =
  let t = Trace.create () in
  Trace.record t 1;
  Alcotest.check_raises "oob"
    (Invalid_argument "Trace.get: index out of bounds") (fun () ->
      ignore (Trace.get t 1))

let test_trace_queries () =
  let t = Trace.create () in
  List.iter (Trace.record t) [ 1; 2; 3; 4; 5 ];
  check_int "count" 2 (Trace.count (fun x -> x mod 2 = 0) t);
  Alcotest.(check (list int))
    "filter" [ 2; 4 ]
    (Trace.filter (fun x -> x mod 2 = 0) t);
  check_bool "find_opt" true (Trace.find_opt (fun x -> x > 3) t = Some 4);
  check_bool "find_index" true (Trace.find_index (fun x -> x > 3) t = Some 3);
  check_int "fold" 15 (Trace.fold ( + ) 0 t);
  Trace.clear t;
  check_int "cleared" 0 (Trace.length t)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int covers range" `Quick
            test_rng_int_covers_range;
          Alcotest.test_case "float unit interval" `Quick
            test_rng_float_unit;
          Alcotest.test_case "float mean" `Slow test_rng_mean_roughly_half;
          Alcotest.test_case "exponential" `Slow
            test_rng_exponential_positive_and_mean;
          Alcotest.test_case "bernoulli extremes" `Quick
            test_rng_bernoulli_extremes;
          Alcotest.test_case "pareto support" `Quick test_rng_pareto_support;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "choice" `Quick test_rng_choice;
        ] );
      ( "sim_time",
        [
          Alcotest.test_case "basics" `Quick test_time_basics;
          Alcotest.test_case "validation" `Quick test_time_validation;
        ] );
      ( "pairing_heap",
        [
          Alcotest.test_case "basics" `Quick test_heap_basics;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "merge" `Quick test_heap_merge;
          Alcotest.test_case "fold_unordered" `Quick
            test_heap_fold_unordered;
          prop_heap_sorts;
          prop_heap_merge_is_union;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_queue_time_order;
          Alcotest.test_case "FIFO tie-break" `Quick test_queue_fifo_ties;
          Alcotest.test_case "counters" `Quick test_queue_counters;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick
            test_engine_runs_in_order;
          Alcotest.test_case "clock advances" `Quick
            test_engine_clock_advances;
          Alcotest.test_case "cascading events" `Quick test_engine_cascading;
          Alcotest.test_case "rejects past scheduling" `Quick
            test_engine_rejects_past;
          Alcotest.test_case "step limit" `Quick test_engine_step_limit;
          Alcotest.test_case "time limit" `Quick test_engine_time_limit;
        ] );
      ( "latency",
        [
          Alcotest.test_case "validation" `Quick test_latency_validation;
          Alcotest.test_case "samples non-negative" `Quick
            test_latency_samples_nonnegative;
          Alcotest.test_case "analytic means" `Quick test_latency_means;
          Alcotest.test_case "empirical vs analytic" `Slow
            test_latency_empirical_mean;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "insertion order" `Quick test_mailbox_order;
          Alcotest.test_case "take_first" `Quick test_mailbox_take_first;
          Alcotest.test_case "remove_all" `Quick test_mailbox_remove_all;
          Alcotest.test_case "drain_fixpoint with effectful predicate"
            `Quick test_mailbox_drain_fixpoint_effectful;
          Alcotest.test_case "statistics" `Quick test_mailbox_stats;
        ] );
      ( "network",
        [
          Alcotest.test_case "delivers" `Quick test_network_delivers;
          Alcotest.test_case "broadcast" `Quick test_network_broadcast;
          Alcotest.test_case "rejects self-send" `Quick
            test_network_rejects_self_send;
          Alcotest.test_case "reorders without FIFO" `Quick
            test_network_reordering_without_fifo;
          Alcotest.test_case "FIFO orders each channel" `Quick
            test_network_fifo_orders_channel;
          Alcotest.test_case "missing handler fails loudly" `Quick
            test_network_no_handler_fails;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fault validation" `Quick
            test_network_faults_validation;
          Alcotest.test_case "drops" `Quick test_network_drops_messages;
          Alcotest.test_case "duplicates" `Quick
            test_network_duplicates_messages;
          Alcotest.test_case "reliable channel, lossless" `Quick
            test_reliable_channel_exactly_once_lossless;
          Alcotest.test_case "reliable channel, heavy faults" `Quick
            test_reliable_channel_exactly_once_under_faults;
          Alcotest.test_case "reliable channel validation" `Quick
            test_reliable_channel_validation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "append/get" `Quick test_trace_append_get;
          Alcotest.test_case "bounds" `Quick test_trace_bounds;
          Alcotest.test_case "queries" `Quick test_trace_queries;
        ] );
    ]
