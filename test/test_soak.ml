(* End-to-end tests of the endurance soak driver (Soak): the fixed-seed
   reuse arc — leave, reclamation, adoption under a bumped generation,
   with the departed occupant's late retransmissions quarantined — and
   replay determinism via the outcome digest. *)

module Soak = Dsm_runtime.Soak
module Json = Dsm_stats.Json

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Seed 1 over 200 epochs exercises every leg of the arc: graceful
   leaves whose slots are freed once the floor passes their finals,
   adoptions at bumped generations, crash-rejoins, and stale channel
   quarantines. The run is shared across cases (it is deterministic). *)
let arc_cfg = { Soak.default with Soak.epochs = 200; window = 10; seed = 1 }
let arc = lazy (Soak.run (module Dsm_core.Opt_p) arc_cfg)

let test_reuse_arc () =
  let o = Lazy.force arc in
  check_bool "clean verdict" true o.Soak.clean;
  check_bool "slots were reused" true (o.Soak.adoptions > 0);
  check_bool "retired slots were reclaimed" true (o.Soak.frees > 0);
  check_bool "generations advanced past the first reuse" true
    (o.Soak.max_generation > 1);
  check_bool "departed occupants' retransmits quarantined" true
    (o.Soak.chan_stale_quarantined > 0);
  check_int "zero ghost dots" 0 o.Soak.ghost_dots;
  check_int "zero forged values" 0 o.Soak.forged_values;
  check_int "zero unnecessary delays (Theorem 4)" 0 o.Soak.unnecessary_delays;
  check_int "zero causal violations" 0 o.Soak.violations

let test_bounded_by_membership () =
  let o = Lazy.force arc in
  (* the endurance claim: metadata is bounded by the slot universe, not
     by the number of occupant lifetimes the run went through *)
  check_int "wire vector width = universe" arc_cfg.Soak.universe
    o.Soak.vec_width;
  check_bool "many more lifetimes than slots" true
    (o.Soak.occupants > 2 * arc_cfg.Soak.universe);
  check_bool "log entries were reclaimed" true (o.Soak.log_reclaimed > 0);
  check_bool "dedup entries were reclaimed" true (o.Soak.dedup_reclaimed > 0)

let test_replay_byte_identical () =
  let o1 = Lazy.force arc in
  let o2 = Soak.run (module Dsm_core.Opt_p) arc_cfg in
  check_bool "equal digests" true (o1.Soak.digest = o2.Soak.digest);
  check_int "equal writes" o1.Soak.total_writes o2.Soak.total_writes;
  check_int "equal applies" o1.Soak.total_applies o2.Soak.total_applies;
  check_int "equal wire bytes" o1.Soak.wire_bytes_total
    o2.Soak.wire_bytes_total;
  check_int "equal engine steps" o1.Soak.engine_steps o2.Soak.engine_steps

let test_seed_changes_digest () =
  let o1 = Lazy.force arc in
  let o2 = Soak.run (module Dsm_core.Opt_p) { arc_cfg with Soak.seed = 2 } in
  check_bool "different seed, different digest" true
    (o1.Soak.digest <> o2.Soak.digest)

let test_conservative_baseline () =
  (* ANBKH holds safety through the same churn; Theorem 4 is not its
     claim, so unnecessary delays are not counted against it *)
  let cfg = { arc_cfg with Soak.epochs = 100; strict_delays = false } in
  let o = Soak.run (module Dsm_core.Anbkh) cfg in
  check_bool "clean verdict" true o.Soak.clean;
  check_int "zero violations" 0 o.Soak.violations;
  check_int "zero ghost dots" 0 o.Soak.ghost_dots

let test_json_artifact () =
  let o = Lazy.force arc in
  let doc = Soak.to_json o in
  let str k = Option.bind (Json.member k doc) Json.to_str in
  check_bool "schema" true (str "schema" = Some "causal-dsm-bench/v1");
  check_bool "section" true (str "section" = Some "soak");
  (* the digest must survive the JSON round-trip exactly, which a
     double cannot guarantee for 63-bit ints — it travels as a string *)
  check_bool "digest as string" true
    (str "digest" = Some (string_of_int o.Soak.digest));
  let table = Soak.high_water_table o in
  check_bool "high-water rows" true
    (List.mem_assoc "wire vector width" table
    && List.mem_assoc "live words high-water" table)

let () =
  Alcotest.run "soak"
    [
      ( "endurance",
        [
          Alcotest.test_case "reuse arc is clean" `Quick test_reuse_arc;
          Alcotest.test_case "bounded by live membership" `Quick
            test_bounded_by_membership;
          Alcotest.test_case "replay determinism" `Quick
            test_replay_byte_identical;
          Alcotest.test_case "seed sensitivity" `Quick
            test_seed_changes_digest;
          Alcotest.test_case "conservative baseline" `Quick
            test_conservative_baseline;
          Alcotest.test_case "json artifact" `Quick test_json_artifact;
        ] );
    ]
