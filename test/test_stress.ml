(* Stress tests: larger configurations than the unit suites, every run
   fully audited. These catch scaling bugs (quadratic blowups, buffer
   leaks, liveness stalls) that small fixtures cannot. *)

module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module Sim_run = Dsm_runtime.Sim_run
module Checker = Dsm_runtime.Checker
module Execution = Dsm_runtime.Execution

let check_bool = Alcotest.(check bool)

let protocols : (string * (module Dsm_core.Protocol.S)) list =
  [
    ("optp", (module Dsm_core.Opt_p));
    ("anbkh", (module Dsm_core.Anbkh));
    ("ws-recv", (module Dsm_core.Ws_receiver));
    ("optp-ws", (module Dsm_core.Opt_p_ws));
    ("optp-direct", (module Dsm_core.Opt_p_direct));
    ("ws-token", (module Dsm_core.Ws_token));
  ]

let audit name outcome =
  let report = Checker.check outcome.Sim_run.execution in
  if not (Checker.is_clean report) then
    Alcotest.failf "%s stress run not clean: %s" name
      (Format.asprintf "%a" Checker.pp_report report);
  report

(* 12 processes, 300 ops each, heavy reordering *)
let test_large_fanout name p () =
  let spec =
    Spec.make ~n:12 ~m:16 ~ops_per_process:300 ~write_ratio:0.5
      ~think:(Latency.Exponential { mean = 4. })
      ~seed:99 ()
  in
  let outcome =
    Sim_run.run p ~spec
      ~latency:(Latency.Lognormal { mu = log 10. -. 0.5; sigma = 1.0 })
      ~seed:7 ()
  in
  let report = audit name outcome in
  check_bool "applies happened" true (report.Checker.total_applies > 10_000)

(* single hot variable, write-only: maximal write-write concurrency *)
let test_hot_variable name p () =
  let spec =
    Spec.make ~n:8 ~m:1 ~ops_per_process:250 ~write_ratio:1.0
      ~var_dist:Spec.Single_var
      ~think:(Latency.Exponential { mean = 2. })
      ~seed:41 ()
  in
  let outcome =
    Sim_run.run p ~spec
      ~latency:(Latency.Uniform { lo = 1.; hi = 200. })
      ~seed:5 ()
  in
  ignore (audit name outcome)

(* heavy-tailed latency: deep buffering chains *)
let test_heavy_tail name p () =
  let spec =
    Spec.make ~n:6 ~m:6 ~ops_per_process:300 ~write_ratio:0.6 ~seed:17 ()
  in
  let outcome =
    Sim_run.run p ~spec
      ~latency:(Latency.Pareto { scale = 2.; shape = 1.2 })
      ~seed:3 ()
  in
  ignore (audit name outcome)

(* long lossy run over reliable channels *)
let test_long_lossy () =
  let spec =
    Spec.make ~n:6 ~m:8 ~ops_per_process:250 ~write_ratio:0.5 ~seed:23 ()
  in
  let outcome =
    Dsm_runtime.Reliable_run.run
      (module Dsm_core.Opt_p)
      ~spec
      ~latency:(Latency.Exponential { mean = 10. })
      ~faults:{ Dsm_sim.Network.drop = 0.35; duplicate = 0.2; corrupt = 0. }
      ~retransmit_after:60. ~seed:9 ()
  in
  let report = Checker.check outcome.Dsm_runtime.Reliable_run.execution in
  check_bool "clean" true (Checker.is_clean report);
  check_bool "complete" true report.Checker.complete;
  check_bool "recovery exercised" true
    (outcome.Dsm_runtime.Reliable_run.retransmissions > 100)

let () =
  Alcotest.run "stress"
    [
      ( "large_fanout",
        List.map
          (fun (name, p) ->
            Alcotest.test_case name `Slow (test_large_fanout name p))
          protocols );
      ( "hot_variable",
        List.map
          (fun (name, p) ->
            Alcotest.test_case name `Slow (test_hot_variable name p))
          protocols );
      ( "heavy_tail",
        List.map
          (fun (name, p) ->
            Alcotest.test_case name `Slow (test_heavy_tail name p))
          protocols );
      ( "lossy",
        [ Alcotest.test_case "long lossy OptP run" `Slow test_long_lossy ]
      );
    ]
