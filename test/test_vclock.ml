(* Unit and property tests for the vector-clock substrate:
   Vector_clock, Dot, Clock_order, Matrix_clock. *)

module V = Dsm_vclock.Vector_clock
module Dot = Dsm_vclock.Dot
module Clock_order = Dsm_vclock.Clock_order
module Matrix_clock = Dsm_vclock.Matrix_clock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Vector_clock: construction                                          *)
(* ------------------------------------------------------------------ *)

let test_create_zeroes () =
  let v = V.create 4 in
  check_int "size" 4 (V.size v);
  for i = 0 to 3 do
    check_int "component" 0 (V.get v i)
  done;
  check_int "sum" 0 (V.sum v)

let test_create_invalid () =
  Alcotest.check_raises "zero size"
    (Invalid_argument "Vector_clock.create: size must be positive")
    (fun () -> ignore (V.create 0));
  Alcotest.check_raises "negative size"
    (Invalid_argument "Vector_clock.create: size must be positive")
    (fun () -> ignore (V.create (-3)))

let test_of_array_copies () =
  let a = [| 1; 2; 3 |] in
  let v = V.of_array a in
  a.(0) <- 99;
  check_int "of_array copies its input" 1 (V.get v 0)

let test_of_array_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Vector_clock.of_array: empty") (fun () ->
      ignore (V.of_array [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Vector_clock.of_array: negative component")
    (fun () -> ignore (V.of_array [| 1; -1 |]))

let test_of_list_roundtrip () =
  let v = V.of_list [ 3; 1; 4; 1; 5 ] in
  Alcotest.(check (list int)) "roundtrip" [ 3; 1; 4; 1; 5 ] (V.to_list v)

let test_copy_independent () =
  let v = V.of_list [ 1; 2 ] in
  let w = V.copy v in
  V.tick w 0;
  check_int "original unchanged" 1 (V.get v 0);
  check_int "copy changed" 2 (V.get w 0)

let test_to_array_snapshot () =
  let v = V.of_list [ 7; 8 ] in
  let a = V.to_array v in
  a.(0) <- 0;
  check_int "snapshot is detached" 7 (V.get v 0)

(* ------------------------------------------------------------------ *)
(* Vector_clock: mutation                                              *)
(* ------------------------------------------------------------------ *)

let test_tick () =
  let v = V.create 3 in
  V.tick v 1;
  V.tick v 1;
  V.tick v 2;
  Alcotest.(check (list int)) "ticks" [ 0; 2; 1 ] (V.to_list v)

let test_tick_bounds () =
  let v = V.create 2 in
  Alcotest.check_raises "oob"
    (Invalid_argument "Vector_clock.tick: index out of bounds") (fun () ->
      V.tick v 2)

let test_set_get () =
  let v = V.create 3 in
  V.set v 0 5;
  check_int "set/get" 5 (V.get v 0);
  Alcotest.check_raises "negative value"
    (Invalid_argument "Vector_clock.set: negative value") (fun () ->
      V.set v 0 (-1))

let test_merge_into () =
  let a = V.of_list [ 1; 5; 0 ] and b = V.of_list [ 3; 2; 0 ] in
  V.merge_into a b;
  Alcotest.(check (list int)) "pointwise max" [ 3; 5; 0 ] (V.to_list a);
  Alcotest.(check (list int)) "src untouched" [ 3; 2; 0 ] (V.to_list b)

let test_merge_size_mismatch () =
  (* Mixed sizes follow the implicit-zero convention: merging a wider
     source grows the destination in place. *)
  let dst = V.of_list [ 4; 1 ] in
  V.merge_into dst (V.of_list [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "dst grown" [ 4; 2; 3 ] (V.to_list dst);
  let dst = V.of_list [ 4; 1; 9 ] in
  V.merge_into dst (V.of_list [ 5 ]);
  Alcotest.(check (list int)) "narrow src" [ 5; 1; 9 ] (V.to_list dst)

let test_merge_pure () =
  let a = V.of_list [ 1; 5 ] and b = V.of_list [ 3; 2 ] in
  let c = V.merge a b in
  Alcotest.(check (list int)) "merge" [ 3; 5 ] (V.to_list c);
  Alcotest.(check (list int)) "a untouched" [ 1; 5 ] (V.to_list a)

(* ------------------------------------------------------------------ *)
(* Vector_clock: order                                                 *)
(* ------------------------------------------------------------------ *)

let test_order_classification () =
  let v l = V.of_list l in
  check_bool "equal" true (V.equal (v [ 1; 2 ]) (v [ 1; 2 ]));
  check_bool "leq reflexive" true (V.leq (v [ 1; 2 ]) (v [ 1; 2 ]));
  check_bool "lt irreflexive" false (V.lt (v [ 1; 2 ]) (v [ 1; 2 ]));
  check_bool "lt" true (V.lt (v [ 1; 2 ]) (v [ 1; 3 ]));
  check_bool "not lt" false (V.lt (v [ 1; 3 ]) (v [ 1; 2 ]));
  check_bool "concurrent" true (V.concurrent (v [ 1; 0 ]) (v [ 0; 1 ]));
  check_bool "equal not concurrent" false
    (V.concurrent (v [ 1; 1 ]) (v [ 1; 1 ]))

let test_compare_partial () =
  let v l = V.of_list l in
  let check_order name expected a b =
    check_bool name true (V.compare_partial a b = expected)
  in
  check_order "Equal" V.Equal (v [ 2; 2 ]) (v [ 2; 2 ]);
  check_order "Before" V.Before (v [ 1; 2 ]) (v [ 2; 2 ]);
  check_order "After" V.After (v [ 3; 2 ]) (v [ 2; 2 ]);
  check_order "Concurrent" V.Concurrent (v [ 3; 0 ]) (v [ 0; 3 ])

let test_compare_total_extends () =
  let a = V.of_list [ 1; 2; 3 ] and b = V.of_list [ 1; 2; 4 ] in
  check_bool "total respects lt" true (V.compare_total a b < 0);
  check_int "total reflexive" 0 (V.compare_total a a)

(* ------------------------------------------------------------------ *)
(* Vector_clock: qcheck properties                                     *)
(* ------------------------------------------------------------------ *)

let vec_gen n = QCheck2.Gen.(array_size (return n) (int_bound 20))

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let prop_merge_commutative =
  qcheck_case "merge commutative"
    QCheck2.Gen.(pair (vec_gen 5) (vec_gen 5))
    (fun (a, b) ->
      let va = V.of_array a and vb = V.of_array b in
      V.equal (V.merge va vb) (V.merge vb va))

let prop_merge_associative =
  qcheck_case "merge associative"
    QCheck2.Gen.(triple (vec_gen 5) (vec_gen 5) (vec_gen 5))
    (fun (a, b, c) ->
      let v = V.of_array in
      V.equal
        (V.merge (V.merge (v a) (v b)) (v c))
        (V.merge (v a) (V.merge (v b) (v c))))

let prop_merge_idempotent =
  qcheck_case "merge idempotent" (vec_gen 5) (fun a ->
      let va = V.of_array a in
      V.equal (V.merge va va) va)

let prop_merge_upper_bound =
  qcheck_case "merge is an upper bound"
    QCheck2.Gen.(pair (vec_gen 6) (vec_gen 6))
    (fun (a, b) ->
      let va = V.of_array a and vb = V.of_array b in
      let m = V.merge va vb in
      V.leq va m && V.leq vb m)

let prop_leq_antisymmetric =
  qcheck_case "leq antisymmetric"
    QCheck2.Gen.(pair (vec_gen 4) (vec_gen 4))
    (fun (a, b) ->
      let va = V.of_array a and vb = V.of_array b in
      (not (V.leq va vb && V.leq vb va)) || V.equal va vb)

let prop_classification_exhaustive =
  qcheck_case "exactly one of =, <, >, || holds"
    QCheck2.Gen.(pair (vec_gen 4) (vec_gen 4))
    (fun (a, b) ->
      let va = V.of_array a and vb = V.of_array b in
      let cases =
        [ V.equal va vb; V.lt va vb; V.lt vb va; V.concurrent va vb ]
      in
      List.length (List.filter Fun.id cases) = 1)

let prop_compare_partial_agrees =
  qcheck_case "compare_partial agrees with predicates"
    QCheck2.Gen.(pair (vec_gen 4) (vec_gen 4))
    (fun (a, b) ->
      let va = V.of_array a and vb = V.of_array b in
      match V.compare_partial va vb with
      | V.Equal -> V.equal va vb
      | V.Before -> V.lt va vb
      | V.After -> V.lt vb va
      | V.Concurrent -> V.concurrent va vb)

(* ------------------------------------------------------------------ *)
(* Vector_clock: generation-lane properties                            *)
(* ------------------------------------------------------------------ *)

(* Counter and generation arrays of width [n]; gens skewed so the
   lane-less (all-zero) case keeps coming up. *)
let gvec_gen n =
  QCheck2.Gen.(
    pair (array_size (return n) (int_bound 20))
      (array_size (return n) (int_bound 2)))

let mk_gvec (cs, gs) =
  let v = V.of_array cs in
  Array.iteri (fun i g -> if g > 0 then V.set_gen v i g) gs;
  v

(* The specification: entries are [(gen, counter)] pairs ordered
   lexicographically (generation dominance). *)
let lex_leq (g, c) (g', c') = g < g' || (g = g' && c <= c')

let prop_gen_leq_is_lex =
  qcheck_case "leq = pointwise lexicographic (gen, counter) order"
    QCheck2.Gen.(pair (gvec_gen 5) (gvec_gen 5))
    (fun (a, b) ->
      let va = mk_gvec a and vb = mk_gvec b in
      let spec = ref true in
      for i = 0 to 4 do
        spec :=
          !spec
          && lex_leq (V.gen va i, V.get va i) (V.gen vb i, V.get vb i)
      done;
      V.leq va vb = !spec)

let prop_gen_merge_is_lex_max =
  qcheck_case "merge = pointwise lexicographic max"
    QCheck2.Gen.(pair (gvec_gen 5) (gvec_gen 5))
    (fun (a, b) ->
      let va = mk_gvec a and vb = mk_gvec b in
      let m = V.merge va vb in
      let ok = ref true in
      for i = 0 to 4 do
        let ea = (V.gen va i, V.get va i) and eb = (V.gen vb i, V.get vb i) in
        let expect = if lex_leq ea eb then eb else ea in
        ok := !ok && (V.gen m i, V.get m i) = expect
      done;
      !ok)

let prop_gen_merge_laws =
  qcheck_case "merge with gen lanes: commutative, idempotent, upper bound"
    QCheck2.Gen.(pair (gvec_gen 4) (gvec_gen 4))
    (fun (a, b) ->
      let va = mk_gvec a and vb = mk_gvec b in
      let m = V.merge va vb in
      V.equal m (V.merge vb va)
      && V.equal (V.merge va va) va
      && V.leq va m && V.leq vb m)

let prop_gen_dense_equivalence =
  qcheck_case "all-zero gen lane behaves exactly like no lane"
    QCheck2.Gen.(pair (vec_gen 5) (vec_gen 5))
    (fun (a, b) ->
      (* force lane materialization, then zero it back out: the vector
         must stay indistinguishable from its dense twin *)
      let laned cs =
        let v = V.of_array cs in
        V.set_gen v 0 1;
        V.set_gen v 0 0;
        v
      in
      let va = V.of_array a and vb = V.of_array b in
      let la = laned a and lb = laned b in
      (not (V.has_generations la))
      && V.equal la va
      && V.leq la vb = V.leq va vb
      && V.leq lb la = V.leq vb va
      && V.compare_total la lb = V.compare_total va vb
      && V.equal (V.merge la lb) (V.merge va vb))

let prop_gen_grow_preserves =
  qcheck_case "grow keeps entries and reads gen 0 beyond the old width"
    (gvec_gen 4)
    (fun g ->
      let v = mk_gvec g in
      let before = (V.to_array v, V.generations v) in
      let w = V.copy v in
      V.grow w 7;
      let ok = ref (V.size w = 7) in
      for i = 0 to 3 do
        ok :=
          !ok
          && V.get w i = (fst before).(i)
          && V.gen w i = (snd before).(i)
      done;
      for i = 4 to 6 do
        ok := !ok && V.get w i = 0 && V.gen w i = 0
      done;
      !ok && V.leq v w && V.leq w v)

let test_gen_dominance () =
  (* a single bumped generation dominates any counter from the
     predecessor: (gen 1, seq 0) > (gen 0, seq 5) *)
  let old_occ = V.of_list [ 5; 2 ] in
  let new_occ = V.of_list [ 0; 2 ] in
  V.set_gen new_occ 0 1;
  check_bool "old < new despite larger counter" true (V.lt old_occ new_occ);
  check_bool "new not leq old" false (V.leq new_occ old_occ);
  check_bool "concurrent? no" false (V.concurrent old_occ new_occ)

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dot_make () =
  let d = Dot.make ~replica:2 ~seq:5 in
  check_int "replica" 2 (Dot.replica d);
  check_int "seq" 5 (Dot.seq d);
  Alcotest.(check string) "pp" "w3#5" (Dot.to_string d)

let test_dot_invalid () =
  Alcotest.check_raises "seq 0"
    (Invalid_argument "Dot.make: sequence numbers start at 1") (fun () ->
      ignore (Dot.make ~replica:0 ~seq:0));
  Alcotest.check_raises "negative replica"
    (Invalid_argument "Dot.make: negative replica") (fun () ->
      ignore (Dot.make ~replica:(-1) ~seq:1))

let test_dot_compare_order () =
  let d1 = Dot.make ~replica:0 ~seq:2
  and d2 = Dot.make ~replica:0 ~seq:3
  and d3 = Dot.make ~replica:1 ~seq:1 in
  check_bool "same replica by seq" true (Dot.compare d1 d2 < 0);
  check_bool "replica major" true (Dot.compare d2 d3 < 0);
  check_bool "equal" true (Dot.equal d1 (Dot.make ~replica:0 ~seq:2))

let test_dot_of_clock () =
  let v = V.of_list [ 4; 7; 1 ] in
  let d = Dot.of_clock v 1 in
  check_int "replica" 1 (Dot.replica d);
  check_int "seq from component" 7 (Dot.seq d)

let test_dot_set_map () =
  let open Dot in
  let s =
    Set.of_list
      [
        make ~replica:0 ~seq:1;
        make ~replica:0 ~seq:1;
        make ~replica:1 ~seq:1;
      ]
  in
  check_int "set dedups" 2 (Set.cardinal s);
  let m = Map.add (make ~replica:0 ~seq:1) "x" Map.empty in
  check_bool "map lookup" true
    (Map.find_opt (make ~replica:0 ~seq:1) m = Some "x")

(* ------------------------------------------------------------------ *)
(* Clock_order                                                         *)
(* ------------------------------------------------------------------ *)

(* a small poset: d below everything; a < b, a < c; b ∥ c *)
let poset () =
  let d = V.of_list [ 1; 0; 0 ] in
  let a = V.of_list [ 1; 1; 0 ] in
  let b = V.of_list [ 2; 1; 0 ] in
  let c = V.of_list [ 1; 1; 1 ] in
  (d, a, b, c)

let test_minimal_maximal () =
  let d, a, b, c = poset () in
  let l = [ a; b; c; d ] in
  check_int "one minimal" 1 (List.length (Clock_order.minimal l));
  check_bool "d is minimal" true
    (V.equal (List.hd (Clock_order.minimal l)) d);
  check_int "two maximal" 2 (List.length (Clock_order.maximal l))

let test_antichain () =
  let _, _, b, c = poset () in
  check_bool "b,c antichain" true (Clock_order.is_antichain [ b; c ]);
  let d, a, _, _ = poset () in
  check_bool "d,a not antichain" false (Clock_order.is_antichain [ d; a ]);
  check_bool "empty antichain" true (Clock_order.is_antichain []);
  check_bool "singleton antichain" true (Clock_order.is_antichain [ b ])

let test_topo_sort_is_linear_extension () =
  let d, a, b, c = poset () in
  let sorted = Clock_order.topo_sort [ c; b; a; d ] in
  check_bool "linear extension" true
    (Clock_order.is_linear_extension sorted);
  check_int "same length" 4 (List.length sorted)

let test_is_linear_extension_detects_violation () =
  let d, a, _, _ = poset () in
  check_bool "a before d violates" false
    (Clock_order.is_linear_extension [ a; d ])

let test_covers () =
  let d, a, b, c = poset () in
  let cov = Clock_order.covers [ a; b; c; d ] in
  (* d—a, a—b, a—c: exactly three covering pairs; d—b and d—c are
     transitive, not covers *)
  check_int "three covers" 3 (List.length cov);
  check_bool "d covers a" true
    (List.exists (fun (x, y) -> V.equal x d && V.equal y a) cov);
  check_bool "d to b is not a cover" false
    (List.exists (fun (x, y) -> V.equal x d && V.equal y b) cov)

let test_down_set () =
  let d, a, b, _ = poset () in
  let below_b = Clock_order.down_set [ a; b; d ] b in
  check_int "two below b" 2 (List.length below_b)

let test_width () =
  let d, a, b, c = poset () in
  check_int "width 2 (b,c)" 2 (Clock_order.width_lower_bound [ a; b; c; d ])

let prop_topo_sort_always_linear =
  qcheck_case "topo_sort output is a linear extension"
    QCheck2.Gen.(list_size (int_range 0 8) (vec_gen 3))
    (fun arrays ->
      let clocks = List.map V.of_array arrays in
      Clock_order.is_linear_extension (Clock_order.topo_sort clocks))

let prop_covers_subset_of_lt =
  qcheck_case "covering pairs are lt pairs"
    QCheck2.Gen.(list_size (int_range 0 6) (vec_gen 3))
    (fun arrays ->
      let clocks = List.map V.of_array arrays in
      List.for_all (fun (a, b) -> V.lt a b) (Clock_order.covers clocks))

(* ------------------------------------------------------------------ *)
(* Matrix_clock                                                        *)
(* ------------------------------------------------------------------ *)

let test_matrix_tick_observe () =
  let m = Matrix_clock.create 3 in
  Matrix_clock.tick m 0;
  Matrix_clock.tick m 0;
  check_int "own event count" 2 (Matrix_clock.get m 0 0);
  Matrix_clock.observe m 1 (V.of_list [ 2; 0; 0 ]);
  check_int "row 1 learned p0's events" 2 (Matrix_clock.get m 1 0)

let test_matrix_merge_from () =
  let a = Matrix_clock.create 2 and b = Matrix_clock.create 2 in
  Matrix_clock.tick b 1;
  Matrix_clock.tick b 1;
  Matrix_clock.merge_from a ~sender:1 b;
  check_int "absorbed sender row" 2 (Matrix_clock.get a 1 1)

let test_matrix_stability () =
  let m = Matrix_clock.create 2 in
  let d = Dot.make ~replica:0 ~seq:1 in
  check_bool "not stable initially" false (Matrix_clock.is_stable m d);
  Matrix_clock.observe m 0 (V.of_list [ 1; 0 ]);
  Matrix_clock.observe m 1 (V.of_list [ 1; 0 ]);
  check_bool "stable once all rows know it" true
    (Matrix_clock.is_stable m d);
  check_int "stable_seq" 1 (Matrix_clock.stable_seq m 0)

let test_matrix_copy_independent () =
  let m = Matrix_clock.create 2 in
  let c = Matrix_clock.copy m in
  Matrix_clock.tick m 0;
  check_int "copy unaffected" 0 (Matrix_clock.get c 0 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "vclock"
    [
      ( "construction",
        [
          Alcotest.test_case "create zeroes" `Quick test_create_zeroes;
          Alcotest.test_case "create rejects bad sizes" `Quick
            test_create_invalid;
          Alcotest.test_case "of_array copies" `Quick test_of_array_copies;
          Alcotest.test_case "of_array validates" `Quick
            test_of_array_invalid;
          Alcotest.test_case "of_list roundtrip" `Quick
            test_of_list_roundtrip;
          Alcotest.test_case "copy is independent" `Quick
            test_copy_independent;
          Alcotest.test_case "to_array snapshots" `Quick
            test_to_array_snapshot;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "tick" `Quick test_tick;
          Alcotest.test_case "tick bounds" `Quick test_tick_bounds;
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "merge_into" `Quick test_merge_into;
          Alcotest.test_case "merge grows across sizes" `Quick
            test_merge_size_mismatch;
          Alcotest.test_case "pure merge" `Quick test_merge_pure;
        ] );
      ( "order",
        [
          Alcotest.test_case "classification" `Quick
            test_order_classification;
          Alcotest.test_case "compare_partial" `Quick test_compare_partial;
          Alcotest.test_case "compare_total extends lt" `Quick
            test_compare_total_extends;
          prop_merge_commutative;
          prop_merge_associative;
          prop_merge_idempotent;
          prop_merge_upper_bound;
          prop_leq_antisymmetric;
          prop_classification_exhaustive;
          prop_compare_partial_agrees;
        ] );
      ( "generations",
        [
          Alcotest.test_case "generation dominance" `Quick test_gen_dominance;
          prop_gen_leq_is_lex;
          prop_gen_merge_is_lex_max;
          prop_gen_merge_laws;
          prop_gen_dense_equivalence;
          prop_gen_grow_preserves;
        ] );
      ( "dot",
        [
          Alcotest.test_case "make/accessors/pp" `Quick test_dot_make;
          Alcotest.test_case "validation" `Quick test_dot_invalid;
          Alcotest.test_case "compare order" `Quick test_dot_compare_order;
          Alcotest.test_case "of_clock" `Quick test_dot_of_clock;
          Alcotest.test_case "Set and Map" `Quick test_dot_set_map;
        ] );
      ( "clock_order",
        [
          Alcotest.test_case "minimal/maximal" `Quick test_minimal_maximal;
          Alcotest.test_case "antichain" `Quick test_antichain;
          Alcotest.test_case "topo_sort" `Quick
            test_topo_sort_is_linear_extension;
          Alcotest.test_case "linear-extension violation" `Quick
            test_is_linear_extension_detects_violation;
          Alcotest.test_case "covers" `Quick test_covers;
          Alcotest.test_case "down_set" `Quick test_down_set;
          Alcotest.test_case "width" `Quick test_width;
          prop_topo_sort_always_linear;
          prop_covers_subset_of_lt;
        ] );
      ( "matrix_clock",
        [
          Alcotest.test_case "tick/observe" `Quick test_matrix_tick_observe;
          Alcotest.test_case "merge_from" `Quick test_matrix_merge_from;
          Alcotest.test_case "stability" `Quick test_matrix_stability;
          Alcotest.test_case "copy independent" `Quick
            test_matrix_copy_independent;
        ] );
    ]
