(* Tests for the wire-cost telemetry tier: the log-bucketed quantile
   sketch against exact sorted-array quantiles (qcheck, bounded
   relative error), the wire accountant's byte conservation against the
   network's own counters, [Metrics.reset] semantics, the flight
   recorder's ring retention and JSONL export, and the bench-diff
   comparator's flattening / direction / regression verdicts. *)

module Lh = Dsm_stats.Log_histogram
module Json = Dsm_stats.Json
module Metrics = Dsm_obs.Metrics
module Wire = Dsm_obs.Wire
module Timeseries = Dsm_obs.Timeseries
module Bench_diff = Dsm_runtime.Bench_diff
module Sim_run = Dsm_runtime.Sim_run
module Spec = Dsm_workload.Spec
module Latency = Dsm_sim.Latency
module V = Dsm_vclock.Vector_clock

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* log-bucketed quantiles vs exact sorted-array quantiles              *)
(* ------------------------------------------------------------------ *)

(* the contract under test: for positive samples,
   exact <= estimate <= max base (exact * gamma) *)
let quantile_bound_holds values q =
  let h = Lh.create () in
  List.iter (Lh.add h) values;
  let sorted = Array.of_list values in
  Array.sort compare sorted;
  let total = Array.length sorted in
  let rank =
    Stdlib.max 1
      (Stdlib.min total (int_of_float (Float.ceil (q *. float_of_int total))))
  in
  let exact = sorted.(rank - 1) in
  let est = Lh.quantile h q in
  let eps = 1e-9 in
  est >= exact -. eps
  && est <= Float.max (Lh.base h) (exact *. Lh.gamma h) +. eps

let qcheck_quantiles =
  let gen =
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 300) (float_range 1e-3 1e6))
        (float_range 0.01 1.0))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500
       ~name:"log-histogram quantile within [exact, exact*gamma]" gen
       (fun (values, q) -> quantile_bound_holds values q))

let test_quantile_pins () =
  (* the three quantiles the registry exports, on a fixed long-tailed
     sample *)
  let values =
    List.init 1000 (fun i -> 1. +. (float_of_int (i * i) /. 100.))
  in
  List.iter
    (fun q ->
      check_bool
        (Printf.sprintf "p%.0f bound" (q *. 100.))
        true
        (quantile_bound_holds values q))
    [ 0.5; 0.95; 0.99 ];
  let h = Lh.create () in
  List.iter (Lh.add h) values;
  check_bool "max is exact" true (Lh.max_value h = 1. +. (999. *. 999. /. 100.));
  (* p100 claims no more than the observed maximum *)
  check_bool "p100 clamped to max" true (Lh.quantile h 1.0 <= Lh.max_value h)

let test_quantile_reset () =
  let h = Lh.create () in
  List.iter (Lh.add h) [ 1.; 10.; 100. ];
  Lh.reset h;
  check_int "count zero after reset" 0 (Lh.count h);
  check_bool "sum zero after reset" true (Lh.sum h = 0.);
  Lh.add h 5.;
  check_int "usable after reset" 1 (Lh.count h)

(* ------------------------------------------------------------------ *)
(* wire accountant: conservation against the network's counters        *)
(* ------------------------------------------------------------------ *)

let run_observed ~n ~seed =
  let spec =
    Spec.make ~n ~m:6 ~ops_per_process:40 ~write_ratio:0.5 ~seed ()
  in
  let metrics = Metrics.create () in
  let wire = Wire.create ~proto:"OptP" ~n () in
  let o =
    Sim_run.run
      (module Dsm_core.Opt_p)
      ~spec
      ~latency:(Latency.Exponential { mean = 10. })
      ~seed ~metrics ~wire ()
  in
  (o, metrics, wire)

let test_wire_conservation () =
  let o, metrics, wire = run_observed ~n:5 ~seed:3 in
  let t = Wire.totals wire in
  check_int "frames == messages_sent" o.Sim_run.messages_sent
    t.Wire.frames;
  check_int "frames == net_sends"
    (Metrics.counter_value (Metrics.counter metrics "net_sends"))
    t.Wire.frames;
  (* the network's byte counter uses the accountant's own sizer, so the
     two views of the wire must agree exactly *)
  check_int "total bytes == net_payload_bytes"
    (Metrics.counter_value (Metrics.counter metrics "net_payload_bytes"))
    (Wire.total_bytes wire);
  check_int "total bytes = header + payload + meta"
    (t.Wire.header + t.Wire.payload + t.Wire.meta)
    (Wire.total_bytes wire);
  (* per-cause and per-edge aggregations partition the totals *)
  let sum_stats f l =
    List.fold_left (fun acc s -> acc + f s) 0 l
  in
  let kinds = List.map snd (Wire.by_kind wire) in
  let edge_stats = List.map (fun (_, _, s) -> s) (Wire.edges wire) in
  List.iter
    (fun (label, stats) ->
      check_int
        (label ^ ": frames partition")
        t.Wire.frames
        (sum_stats (fun s -> s.Wire.frames) stats);
      check_int
        (label ^ ": meta partition")
        t.Wire.meta
        (sum_stats (fun s -> s.Wire.meta) stats);
      check_int
        (label ^ ": delta partition")
        t.Wire.delta_meta
        (sum_stats (fun s -> s.Wire.delta_meta) stats))
    [ ("by_kind", kinds); ("edges", edge_stats) ];
  (* OptP's causal metadata per write frame: the n-wide Write_co vector
     (4 + 8n bytes) plus the write's dot (12 bytes) *)
  check_int "dense meta bytes per frame"
    ((4 + (8 * 5) + 12) * t.Wire.frames)
    t.Wire.meta;
  (* the delta counterfactual can never cost more than dense encoding
     here: 12 bytes per changed entry vs 8 per entry, but consecutive
     frames on an edge move few entries *)
  check_bool "delta <= dense on a causal workload" true
    (t.Wire.delta_meta <= t.Wire.meta)

let test_wire_delta_baseline () =
  let w = Wire.create ~proto:"test" ~n:2 () in
  let frame v = { Wire.kind = "write"; scalars = 0; dots = 0; vectors = [ v ] } in
  let v1 = V.of_array [| 3; 0; 1 |] in
  Wire.record w ~src:0 ~dst:1 (frame v1);
  (* first frame on the edge: every nonzero entry changed vs the
     all-zeros baseline *)
  let t1 = Wire.totals w in
  check_int "first frame delta = 4 + 2*12" (4 + 24) t1.Wire.delta_meta;
  (* identical vector again: nothing changed, base cost only *)
  Wire.record w ~src:0 ~dst:1 (frame (V.of_array [| 3; 0; 1 |]));
  let t2 = Wire.totals w in
  check_int "repeat frame delta = base only" (4 + 24 + 4) t2.Wire.delta_meta;
  (* one entry moves: one delta entry *)
  Wire.record w ~src:0 ~dst:1 (frame (V.of_array [| 4; 0; 1 |]));
  let t3 = Wire.totals w in
  check_int "one changed entry = 4 + 12" (4 + 24 + 4 + 16) t3.Wire.delta_meta;
  (* a different edge starts from its own all-zeros baseline *)
  Wire.record w ~src:1 ~dst:0 (frame (V.of_array [| 4; 0; 1 |]));
  let t4 = Wire.totals w in
  check_int "edges keep independent baselines" (4 + 24 + 4 + 16 + 4 + 24)
    t4.Wire.delta_meta;
  Wire.reset w;
  check_int "reset zeroes frames" 0 (Wire.frames w);
  (* reset also forgets baselines: the next frame prices like the first *)
  Wire.record w ~src:0 ~dst:1 (frame (V.of_array [| 4; 0; 1 |]));
  check_int "reset forgets delta baselines" (4 + 24)
    (Wire.totals w).Wire.delta_meta

let test_wire_json () =
  let _, _, wire = run_observed ~n:4 ~seed:7 in
  let doc = Wire.to_json wire in
  let member k =
    match Json.member k doc with Some v -> v | None -> Json.Null
  in
  check_bool "protocol carried" true (member "protocol" = Json.Str "OptP");
  check_bool "n carried" true (member "n" = Json.Num 4.);
  (match member "by_kind" with
  | Json.Arr (_ :: _) -> ()
  | _ -> Alcotest.fail "by_kind missing");
  (* the document round-trips through the shared parser *)
  match Json.parse_result (Json.to_string doc) with
  | Ok doc' -> check_bool "round-trips" true (doc = doc')
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* Metrics.reset                                                       *)
(* ------------------------------------------------------------------ *)

let test_metrics_reset () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "c" in
  let g = Metrics.gauge reg "g" in
  let h = Metrics.histogram reg "h" ~lo:0. ~hi:10. ~bins:5 in
  let q = Metrics.quantile reg "q" in
  Metrics.add c 7;
  Metrics.set g 3;
  Metrics.observe h 2.;
  Metrics.observe_q q 50.;
  Metrics.reset reg;
  check_int "counter zero" 0 (Metrics.counter_value c);
  check_int "gauge zero" 0 (Metrics.gauge_value g);
  check_int "gauge max zero" 0 (Metrics.gauge_max g);
  check_int "histogram empty" 0 (Metrics.histogram_count h);
  check_int "quantile empty" 0 (Metrics.quantile_count q);
  check_int "registrations survive" 4 (List.length (Metrics.rows reg));
  (* handles stay live: the pre-resolved instruments keep recording *)
  Metrics.incr c;
  Metrics.observe_q q 2.;
  check_int "counter records after reset" 1 (Metrics.counter_value c);
  check_int "quantile records after reset" 1 (Metrics.quantile_count q);
  (* no-op on the null registry *)
  Metrics.reset (Metrics.null ())

(* ------------------------------------------------------------------ *)
(* flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_timeseries_ring () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "ticks" in
  let ts = Timeseries.create ~capacity:4 ~metrics:reg () in
  for i = 1 to 6 do
    Metrics.add c i;
    Timeseries.scrape ts ~now:(float_of_int i)
  done;
  check_int "all scrapes counted" 6 (Timeseries.scrapes ts);
  (match Timeseries.series ts "ticks" with
  | Some values ->
      (* last [capacity] scrapes of the running sum 1,3,6,10,15,21 *)
      check_bool "ring keeps the newest window" true
        (values = [ 6.; 10.; 15.; 21. ])
  | None -> Alcotest.fail "series missing");
  (* a series born mid-flight: NaN before its first scrape, then data *)
  let g = Metrics.gauge reg "late" in
  Metrics.set g 9;
  Timeseries.scrape ts ~now:7.;
  (match Timeseries.series ts "late" with
  | Some [ a; b; c'; d ] ->
      check_bool "NaN before born" true
        (Float.is_nan a && Float.is_nan b && Float.is_nan c');
      check_bool "live after born" true (d = 9.)
  | _ -> Alcotest.fail "late series wrong shape");
  let jsonl = Timeseries.to_jsonl ts in
  let lines =
    String.split_on_char '\n' jsonl |> List.filter (fun l -> l <> "")
  in
  check_int "one line per retained scrape" 4 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse_result line with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("jsonl line does not parse: " ^ msg))
    lines;
  check_bool "NaN omitted from early lines" true
    (not (contains ~sub:"late" (List.hd lines)));
  check_bool "live sample exported" true
    (contains ~sub:"\"late\":9" (List.nth lines 3))

let test_timeseries_quantile_series () =
  let reg = Metrics.create () in
  let q = Metrics.quantile reg "lat" in
  let ts = Timeseries.create ~metrics:reg () in
  Metrics.observe_q q 10.;
  Metrics.observe_q q 20.;
  Timeseries.scrape ts ~now:1.;
  check_bool "count series flattened" true
    (Timeseries.series ts "lat_count" <> None);
  check_bool "p99 series flattened" true
    (Timeseries.series ts "lat_p99" <> None)

(* ------------------------------------------------------------------ *)
(* bench diff                                                          *)
(* ------------------------------------------------------------------ *)

let parse s =
  match Json.parse_result s with
  | Ok doc -> doc
  | Error msg -> Alcotest.fail msg

let test_bench_diff_flatten () =
  let doc =
    parse
      {|{"schema":"s","sweep":[{"ns_per_event":35.5},{"ns_per_event":200.0}],"total":{"speedup":2.0}}|}
  in
  let flat = Bench_diff.flatten doc in
  check_bool "indexed paths" true
    (List.mem_assoc "sweep[0].ns_per_event" flat
    && List.mem_assoc "sweep[1].ns_per_event" flat
    && List.mem_assoc "total.speedup" flat);
  check_int "strings are not metrics" 3 (List.length flat)

let test_bench_diff_directions () =
  List.iter
    (fun (path, want) ->
      check_bool path true (Bench_diff.direction_of path = want))
    [
      ("sweep[0].ns_per_event", Bench_diff.Lower_better);
      ("overhead[1].overhead_pct", Bench_diff.Lower_better);
      ("results[2].meta_bytes_per_msg", Bench_diff.Lower_better);
      ("gc_minor_words_per_event", Bench_diff.Lower_better);
      ("batching.step_reduction", Bench_diff.Higher_better);
      ("events_per_sec", Bench_diff.Higher_better);
      ("overhead[0].n", Bench_diff.Info);
      ("overhead[0].messages", Bench_diff.Info);
    ]

let test_bench_diff_verdicts () =
  let old_doc =
    parse {|{"section":"x","a":{"ns_per_event":100.0,"throughput":50.0,"messages":10}}|}
  in
  let new_doc =
    parse
      {|{"section":"x","a":{"ns_per_event":250.0,"throughput":30.0,"messages":99},"b":{"new_metric_ms":1.0}}|}
  in
  let d = Bench_diff.diff ~fail_over:2.0 ~old_doc ~new_doc () in
  let regs = Bench_diff.regressions d in
  (* ns 100 -> 250 is 2.5x: regressed. throughput 50 -> 30 is 1.67x:
     within threshold. messages is info: never fatal. *)
  check_int "one regression" 1 (List.length regs);
  check_bool "the slow one" true
    ((List.hd regs).Bench_diff.path = "a.ns_per_event");
  check_int "new-only metrics are reported" 1 (List.length d.Bench_diff.only_new);
  check_bool "no schema mismatch" true (Bench_diff.schema_mismatch d = None);
  let tight = Bench_diff.diff ~fail_over:1.5 ~old_doc ~new_doc () in
  check_int "tighter threshold catches throughput too" 2
    (List.length (Bench_diff.regressions tight));
  check_bool "fail_over must exceed 1" true
    (match Bench_diff.diff ~fail_over:1.0 ~old_doc ~new_doc () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_bench_diff_duplicate_labels () =
  (* a label shared by several elements identifies none of them; the
     elements fall back to unlabeled numbering *)
  let doc =
    parse {|{"arr":[{"name":"dup","ms":1.0},{"name":"dup","ms":2.0}]}|}
  in
  let flat = Bench_diff.flatten doc in
  check_bool "dups keyed among unlabeled" true
    (List.mem_assoc "arr[0].ms" flat && List.mem_assoc "arr[1].ms" flat)

let test_bench_diff_new_section_additive () =
  (* a labeled section present only in NEW must surface as an
     informational addition, not shift the unlabeled keys after it into
     false regressions *)
  let old_doc =
    parse {|{"section":"x","arr":[{"name":"a","ms":10.0},{"ms":20.0},{"ms":30.0}]}|}
  in
  let new_doc =
    parse
      {|{"section":"x","arr":[{"name":"a","ms":10.0},{"name":"b","ms":999.0},{"ms":20.0},{"ms":30.0}]}|}
  in
  let d = Bench_diff.diff ~old_doc ~new_doc () in
  check_int "no false regressions" 0 (List.length (Bench_diff.regressions d));
  check_bool "addition is informational" true
    (List.map fst d.Bench_diff.only_new = [ "arr[name=b].ms" ])

let test_bench_diff_real_artifact () =
  (* a document diffed against itself has no regressions, whatever the
     metric names *)
  let doc =
    parse
      {|{"schema":"causal-dsm-bench/v1","section":"wire_cost",
         "results":[{"n":8,"frames":100,"meta_bytes_per_msg":68.0,
                     "delta_bytes_per_msg":30.0}]}|}
  in
  let d = Bench_diff.diff ~old_doc:doc ~new_doc:doc () in
  check_int "self diff is clean" 0 (List.length (Bench_diff.regressions d));
  check_bool "every shared metric compared" true
    (List.length d.Bench_diff.entries >= 4)

let () =
  Alcotest.run "wire"
    [
      ( "quantile sketch",
        [
          qcheck_quantiles;
          Alcotest.test_case "p50/p95/p99 pins" `Quick test_quantile_pins;
          Alcotest.test_case "reset" `Quick test_quantile_reset;
        ] );
      ( "wire accountant",
        [
          Alcotest.test_case "byte conservation vs net counters" `Quick
            test_wire_conservation;
          Alcotest.test_case "delta baselines per edge" `Quick
            test_wire_delta_baseline;
          Alcotest.test_case "json export" `Quick test_wire_json;
        ] );
      ( "metrics reset",
        [ Alcotest.test_case "zero in place" `Quick test_metrics_reset ] );
      ( "flight recorder",
        [
          Alcotest.test_case "ring retention + jsonl" `Quick
            test_timeseries_ring;
          Alcotest.test_case "quantile flattening" `Quick
            test_timeseries_quantile_series;
        ] );
      ( "bench diff",
        [
          Alcotest.test_case "flatten" `Quick test_bench_diff_flatten;
          Alcotest.test_case "directions" `Quick test_bench_diff_directions;
          Alcotest.test_case "verdicts" `Quick test_bench_diff_verdicts;
          Alcotest.test_case "duplicate labels" `Quick
            test_bench_diff_duplicate_labels;
          Alcotest.test_case "new section additive" `Quick
            test_bench_diff_new_section_additive;
          Alcotest.test_case "self diff" `Quick test_bench_diff_real_artifact;
        ] );
    ]
